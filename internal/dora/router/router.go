// Package router implements DORA's routing rules: per-table maps from
// ranges of the partitioning field's values to logical partitions
// (paper §1.1: "The partitioning is enforced by a set of routing rules,
// one per table"). Partitions are identified by opaque int handles; the
// engine maps handles to worker threads.
//
// Routing tables are read on every action dispatch and written only by
// re-partitioning, so they use a read-write mutex and copy-on-write
// range slices.
package router

import (
	"fmt"
	"sort"
	"sync"
)

// Range assigns the value interval [Lo, Hi] (inclusive) to a partition.
type Range struct {
	Lo, Hi int64
	Part   int
}

// Table is the routing rule for one database table.
type Table struct {
	mu     sync.RWMutex
	field  string
	ranges []Range // sorted by Lo, contiguous, covering [domainLo, domainHi]
}

// NewUniform builds a routing table splitting [lo, hi] evenly across the
// given partition handles.
func NewUniform(field string, lo, hi int64, parts []int) *Table {
	if len(parts) == 0 {
		panic("router: no partitions")
	}
	if hi < lo {
		hi = lo
	}
	n := int64(len(parts))
	span := hi - lo + 1
	t := &Table{field: field}
	start := lo
	for i, p := range parts {
		end := lo + span*int64(i+1)/n - 1
		if i == len(parts)-1 {
			end = hi
		}
		if end < start {
			end = start
		}
		t.ranges = append(t.ranges, Range{Lo: start, Hi: end, Part: p})
		start = end + 1
	}
	return t
}

// Field returns the partitioning field this table routes on.
func (t *Table) Field() string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.field
}

// Route returns the partition handle owning value v. Values outside the
// domain clamp to the first/last range (routing must be total).
func (t *Table) Route(v int64) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.routeLocked(v)
}

func (t *Table) routeLocked(v int64) int {
	rs := t.ranges
	if v < rs[0].Lo {
		return rs[0].Part
	}
	i := sort.Search(len(rs), func(i int) bool { return rs[i].Hi >= v })
	if i == len(rs) {
		return rs[len(rs)-1].Part
	}
	return rs[i].Part
}

// Ranges returns a copy of the current routing ranges.
func (t *Table) Ranges() []Range {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Range, len(t.ranges))
	copy(out, t.ranges)
	return out
}

// NumPartitions returns the number of distinct partition handles.
func (t *Table) NumPartitions() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	seen := map[int]bool{}
	for _, r := range t.ranges {
		seen[r.Part] = true
	}
	return len(seen)
}

// Split divides the range owned by part at value mid: values >= mid move
// to newPart. It returns the moved interval. Split fails if part does
// not own mid-1 and mid, or the cut would create an empty side.
func (t *Table) Split(part int, mid int64, newPart int) (Range, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, r := range t.ranges {
		if r.Part != part || mid <= r.Lo || mid > r.Hi {
			continue
		}
		moved := Range{Lo: mid, Hi: r.Hi, Part: newPart}
		t.ranges[i].Hi = mid - 1
		// Insert the new range right after i.
		t.ranges = append(t.ranges, Range{})
		copy(t.ranges[i+2:], t.ranges[i+1:])
		t.ranges[i+1] = moved
		return moved, nil
	}
	return Range{}, fmt.Errorf("router: partition %d owns no range splittable at %d", part, mid)
}

// Reassign points every range owned by from at to instead (merge step).
// It returns the number of ranges reassigned.
func (t *Table) Reassign(from, to int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := range t.ranges {
		if t.ranges[i].Part == from {
			t.ranges[i].Part = to
			n++
		}
	}
	t.coalesceLocked()
	return n
}

// Replace installs a completely new routing rule (re-partitioning on a
// new field, experiment E7).
func (t *Table) Replace(field string, ranges []Range) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.field = field
	t.ranges = append([]Range(nil), ranges...)
	sort.Slice(t.ranges, func(i, j int) bool { return t.ranges[i].Lo < t.ranges[j].Lo })
	t.coalesceLocked()
}

// coalesceLocked merges adjacent ranges with the same owner.
func (t *Table) coalesceLocked() {
	if len(t.ranges) < 2 {
		return
	}
	out := t.ranges[:1]
	for _, r := range t.ranges[1:] {
		last := &out[len(out)-1]
		if last.Part == r.Part && last.Hi+1 == r.Lo {
			last.Hi = r.Hi
		} else {
			out = append(out, r)
		}
	}
	t.ranges = out
}

// PartWidth returns the total width of values owned by part.
func (t *Table) PartWidth(part int) int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var w int64
	for _, r := range t.ranges {
		if r.Part == part {
			w += r.Hi - r.Lo + 1
		}
	}
	return w
}
