package dora

import (
	"sync"
	"testing"
	"time"

	"dora/internal/catalog"
	"dora/internal/sm"
	"dora/internal/tuple"
	"dora/internal/xct"
)

// rig2 builds an SM with TWO tables over the same key domain — accounts
// (balance 100 per row) and ledger (counter 0 per row) — so an action
// routed to an accounts worker that touches ledger always crosses
// partitions (each table has its own workers).
func rig2(t *testing.T, n int64, parts int, cfg Config) (*sm.SM, *catalog.Table, *catalog.Table, *Dora) {
	t.Helper()
	s, err := sm.Open(sm.Options{Frames: 512})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, val int64) *catalog.Table {
		tbl, err := s.CreateTable(sm.TableSpec{
			Name: name,
			Fields: []catalog.Field{
				{Name: "id", Type: tuple.TInt},
				{Name: "v", Type: tuple.TInt},
			},
			KeyFields: []string{"id"},
			Key:       func(r tuple.Record) int64 { return r[0].Int },
		})
		if err != nil {
			t.Fatal(err)
		}
		ses := s.Session(0)
		load := s.Begin()
		for i := int64(1); i <= n; i++ {
			if err := ses.Insert(load, tbl, tuple.Record{tuple.I(i), tuple.I(val)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Commit(load); err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	acct := mk("accounts", 100)
	ledger := mk("ledger", 0)
	cfg.PartitionsPerTable = parts
	if cfg.Domains == nil {
		cfg.Domains = map[string][2]int64{"accounts": {1, n}, "ledger": {1, n}}
	}
	e := New(s, cfg)
	t.Cleanup(func() { _ = e.Close() })
	return s, acct, ledger, e
}

// xferFlow2 is the cross-partition transaction: one action on
// accounts[k] that bumps it locally and bumps ledger[k] through a
// foreign op — suspending on it when the engine offers an AsyncHost,
// shipping blocking otherwise.
func xferFlow2(acct, ledger *catalog.Table, k int64) *xct.Flow {
	bump := func(r tuple.Record) tuple.Record {
		r[1] = tuple.I(r[1].Int + 1)
		return r
	}
	return xct.NewFlow("xfer2").AddPhase(&xct.Action{
		Table: "accounts", KeyField: "id", Key: k, Mode: xct.Write,
		Run: func(env *xct.Env) error {
			if err := env.Ses.Mutate(env.Txn, acct, k, bump); err != nil {
				return err
			}
			if env.Async != nil {
				resume := env.Async.Suspend()
				env.Ses.MutateAsync(env.Txn, ledger, k, bump, env.Async.Home(), resume)
				return nil
			}
			return env.Ses.Mutate(env.Txn, ledger, k, bump)
		},
	})
}

// sumCol totals column v over [1, n] through a fresh shared session.
func sumCol(t *testing.T, s *sm.SM, tbl *catalog.Table, n int64) int64 {
	t.Helper()
	ses := s.Session(99)
	txn := s.Begin()
	var total int64
	for i := int64(1); i <= n; i++ {
		rec, err := ses.Read(txn, tbl, i)
		if err != nil {
			t.Fatalf("read %s[%d]: %v", tbl.Name, i, err)
		}
		total += rec[1].Int
	}
	return total
}

// TestContinuationShipCommits: the basic end-to-end path — the foreign
// op rides a contMsg, the suspended action resumes through a kontMsg,
// and both sides of the transaction commit exactly once.
func TestContinuationShipCommits(t *testing.T) {
	s, acct, ledger, e := rig2(t, 50, 2, Config{})
	const txns = 200
	for i := 0; i < txns; i++ {
		k := int64(i%50) + 1
		if err := e.Exec(0, xferFlow2(acct, ledger, k)); err != nil {
			t.Fatalf("xfer %d: %v", i, err)
		}
	}
	ss := e.ShipSnapshot()
	if ss.ContShips == 0 {
		t.Fatal("no continuation ships: the foreign ops did not ride contMsgs")
	}
	if ss.BlockingShips != 0 {
		t.Fatalf("blocking ships = %d in continuation mode", ss.BlockingShips)
	}
	if ss.KontsRun == 0 {
		t.Fatal("no continuations delivered")
	}
	if ss.SuspendedNow != 0 {
		t.Fatalf("suspended actions leaked: %d", ss.SuspendedNow)
	}
	if got := sumCol(t, s, acct, 50); got != 50*100+txns {
		t.Fatalf("accounts total = %d, want %d", got, 50*100+txns)
	}
	if got := sumCol(t, s, ledger, 50); got != txns {
		t.Fatalf("ledger total = %d, want %d", got, txns)
	}
}

// TestBlockingShipsConfig: the escape hatch — with Config.BlockingShips
// the same flow runs entirely on the parked-sender path (bodies get no
// AsyncHost) and still commits correctly.
func TestBlockingShipsConfig(t *testing.T) {
	s, acct, ledger, e := rig2(t, 50, 2, Config{BlockingShips: true})
	for i := 0; i < 100; i++ {
		if err := e.Exec(0, xferFlow2(acct, ledger, int64(i%50)+1)); err != nil {
			t.Fatalf("xfer %d: %v", i, err)
		}
	}
	ss := e.ShipSnapshot()
	if ss.ContShips != 0 || ss.KontsRun != 0 || ss.OverlapExec != 0 {
		t.Fatalf("continuation machinery active under BlockingShips: %+v", ss)
	}
	if ss.BlockingShips == 0 {
		t.Fatal("no blocking ships recorded")
	}
	if got := sumCol(t, s, ledger, 50); got != 100 {
		t.Fatalf("ledger total = %d, want 100", got)
	}
}

// TestContinuationAbortCompensatesBothSides: a phase whose suspending
// action succeeds while a sibling fails must roll BOTH tables back —
// the committer's compensation rides RollbackAsync in continuation
// mode.
func TestContinuationAbortCompensatesBothSides(t *testing.T) {
	s, acct, ledger, e := rig2(t, 50, 2, Config{})
	boom := &xct.Action{
		Table: "accounts", KeyField: "id", Key: 40, Mode: xct.Write,
		Run: func(env *xct.Env) error { return errFailAction },
	}
	flow := xferFlow2(acct, ledger, 7)
	flow.Phases[0].Actions = append(flow.Phases[0].Actions, boom)
	if err := e.Exec(0, flow); err == nil {
		t.Fatal("flow with failing action committed")
	}
	if got := sumCol(t, s, acct, 50); got != 50*100 {
		t.Fatalf("accounts total after abort = %d, want %d", got, 50*100)
	}
	if got := sumCol(t, s, ledger, 50); got != 0 {
		t.Fatalf("ledger total after abort = %d, want 0", got)
	}
	// The engine still works (locks released, no stranded suspensions).
	if err := e.Exec(0, xferFlow2(acct, ledger, 7)); err != nil {
		t.Fatalf("exec after abort: %v", err)
	}
	if ss := e.ShipSnapshot(); ss.SuspendedNow != 0 {
		t.Fatalf("suspended actions leaked after abort: %d", ss.SuspendedNow)
	}
}

var errFailAction = errTest("action failed")

type errTest string

func (e errTest) Error() string { return string(e) }

// TestContinuationCycleDiagnosedNotFatal: a ship chain that revisits a
// worker over continuation hops cannot wedge (nobody is parked), so the
// debug detector diagnoses it and lets it complete.
func TestContinuationCycleDiagnosedNotFatal(t *testing.T) {
	_, _, _, e := rig2(t, 100, 2, Config{DebugShipCheck: true})
	rt := e.Router("accounts")
	ranges := rt.Ranges()
	if len(ranges) < 2 {
		t.Fatal("need 2 ranges")
	}
	vA, vB := ranges[0].Lo, ranges[1].Lo
	done := make(chan bool, 1)
	e.ExecOnOwnerAsync("accounts", vA, func(*OwnerCtx) { // hop 1: -> A (not parked)
		e.ExecOnOwnerAsync("accounts", vB, func(*OwnerCtx) { // hop 2: A -> B (not parked)
			e.ExecOnOwnerAsync("accounts", vA, func(*OwnerCtx) { // hop 3: B -> A — cycle, but A drains
			}, func(ok bool) { done <- ok })
		}, func(bool) {})
	}, func(bool) {})
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("cyclic continuation ship failed")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cyclic continuation ship wedged — continuation mode must not deadlock")
	}
	ss := e.ShipSnapshot()
	if ss.CyclesDiagnosed == 0 {
		t.Fatal("cycle not diagnosed")
	}
	if ss.LastCycle == "" {
		t.Fatal("no cycle diagnostic recorded")
	}
}

// TestContinuationRepartitionStorm drives cross-partition transactions
// through a split/merge storm on BOTH tables under -race: suspended
// actions must survive senders being split, owners being merged away
// mid-flight, and continuations being forwarded along merge chains —
// with no lost or double-run continuation and exactly-once commit
// effects on both tables.
func TestContinuationRepartitionStorm(t *testing.T) {
	const n = 100
	s, acct, ledger, e := rig2(t, n, 2, Config{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var execErr error
	var committed int64
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := int64((c*31+i*7)%n) + 1
				i++
				if err := e.Exec(c, xferFlow2(acct, ledger, k)); err != nil {
					mu.Lock()
					if execErr == nil {
						execErr = err
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				committed++
				mu.Unlock()
			}
		}(c)
	}
	// The storm: repeated split+merge cycles on both tables while the
	// traffic runs. Splits land mid-range; merges fold the new worker
	// straight back, exercising evacuation (continuation forwarding).
	storms := 30
	if testing.Short() {
		storms = 8
	}
	for cycle := 0; cycle < storms; cycle++ {
		for _, table := range []string{"accounts", "ledger"} {
			rt := e.Router(table)
			ranges := rt.Ranges()
			r := ranges[cycle%len(ranges)]
			if r.Hi-r.Lo < 2 {
				continue
			}
			nw, err := e.SplitPartition(table, r.Part, r.Lo+(r.Hi-r.Lo)/2)
			if err != nil {
				continue // the range moved under us; next cycle
			}
			time.Sleep(time.Millisecond)
			if err := e.MergePartition(table, nw, r.Part); err != nil {
				t.Errorf("storm merge %s: %v", table, err)
			}
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if execErr != nil {
		t.Fatalf("exec during storm: %v", execErr)
	}
	// Exactly-once: each commit bumped one accounts row and one ledger
	// row; nothing was lost or doubled through the storms.
	if got := sumCol(t, s, acct, n); got != n*100+committed {
		t.Fatalf("accounts total = %d, want %d (lost/double-run continuations)", got, n*100+committed)
	}
	if got := sumCol(t, s, ledger, n); got != committed {
		t.Fatalf("ledger total = %d, want %d (lost/double-run continuations)", got, committed)
	}
	if ss := e.ShipSnapshot(); ss.SuspendedNow != 0 {
		t.Fatalf("suspended actions leaked: %d", ss.SuspendedNow)
	}
}

// TestExecAsyncClientNonBlocking: the flow-graph executor's asynchronous
// client entry — the caller is free while the RVP countdown drives the
// flow; done fires with the verdict.
func TestExecAsyncClientNonBlocking(t *testing.T) {
	s, acct, ledger, e := rig2(t, 20, 2, Config{})
	results := make(chan error, 50)
	for i := 0; i < 50; i++ {
		e.ExecAsync(0, xferFlow2(acct, ledger, int64(i%20)+1), func(err error) { results <- err })
	}
	for i := 0; i < 50; i++ {
		select {
		case err := <-results:
			if err != nil {
				t.Fatalf("async exec: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("ExecAsync verdicts never arrived")
		}
	}
	if got := sumCol(t, s, ledger, 20); got != 50 {
		t.Fatalf("ledger total = %d, want 50", got)
	}
}
