package dora

import (
	"dora/internal/btree"
	"dora/internal/buffer"
	"dora/internal/catalog"
	"dora/internal/page"
)

// Owner-coordinated page cleaning. Since owner mutations of stamped heap
// pages are latch-free, the buffer pool cannot latch a stamped dirty
// frame to flush it — only the owning worker's thread may read its bytes
// consistently. So the pool's write-back (cleaner daemon, checkpoint
// FlushAll, forced paths) asks US: snapshotPage resolves the page's
// stamp to the partition worker holding it and ships a copy request
// through that worker's inbox, exactly like every other foreign access.
// The owner copies the image between two of its operations — a quiescent
// point by construction — and the requester hardens the copy while the
// owner keeps mutating the live frame.

// snapshotPage implements buffer.Snapshotter over the engine's workers.
// ok=false tells the pool to re-resolve: the stamp moved (split handed
// the page's records over, evacuate reassigned it) or the engine is shut
// down (stamps are released right after the workers drain, so the pool's
// retry loop terminates on the latched path).
func (e *Dora) snapshotPage(pid page.ID) (buffer.PageSnapshot, bool) {
	// Hold the exec gate shared like every ship, so a quiescing
	// Repartition never interleaves with an in-flight snapshot.
	e.execGate.RLock()
	defer e.execGate.RUnlock()
	if e.closed {
		return buffer.PageSnapshot{}, false
	}
	// Resolve the stamp: which table's heap, which token.
	var tbl *catalog.Table
	var tok *btree.Owner
	for _, t := range e.sm.Cat.Tables() {
		if o := t.Heap.StampOwner(pid); o != nil {
			tbl, tok = t, o
			break
		}
	}
	if tbl == nil {
		return buffer.PageSnapshot{}, false
	}
	// Resolve the token to its live partition worker.
	e.topoMu.RLock()
	var p *partition
	for _, q := range e.tableParts[tbl.ID] {
		if q.token == tok {
			p = q
			break
		}
	}
	e.topoMu.RUnlock()
	if p == nil {
		return buffer.PageSnapshot{}, false
	}
	var snap buffer.PageSnapshot
	var got bool
	heap := tbl.Heap
	m := &maintMsg{fn: func(ctx *OwnerCtx) {
		// Re-derive the token from the executing thread: an evacuate may
		// have forwarded this request to the adopting worker, which also
		// inherited the stamp (ReassignStamps runs before forwarding
		// starts, on the retiring thread). A split that unstamped the
		// page instead makes this return false and the pool re-resolves.
		snap, got = heap.SnapshotOwnedPage(ctx.p.token, pid)
	}, done: make(chan struct{})}
	if det := e.shipDet; det != nil {
		m.path = det.extendPath(p.worker, true)
	}
	if !p.in.pushChecked(m) {
		return buffer.PageSnapshot{}, false
	}
	<-m.done
	if m.cyc != nil {
		panic(m.cyc)
	}
	if !m.ok || !got {
		return buffer.PageSnapshot{}, false
	}
	return snap, true
}

// snapshotPageAsync implements buffer.SnapshotterAsync: snapshotPage in
// continuation-passing style. It returns as soon as the copy request is
// enqueued on the owner's inbox (or resolution failed); done fires
// exactly once — inline on the owner's thread right after it took the
// copy — with ok=false meaning the caller should re-resolve through the
// synchronous path, exactly like snapshotPage's false. The exec gate is
// held shared until done fires, mirroring ExecOnOwnerAsync, so a
// quiescing Repartition never interleaves with an in-flight snapshot. No
// retry loop here: the pool's completion handler owns the fallback.
func (e *Dora) snapshotPageAsync(pid page.ID, done func(buffer.PageSnapshot, bool)) {
	e.execGate.RLock()
	finish := func(snap buffer.PageSnapshot, ok bool) {
		e.execGate.RUnlock()
		done(snap, ok)
	}
	if e.closed {
		finish(buffer.PageSnapshot{}, false)
		return
	}
	var tbl *catalog.Table
	var tok *btree.Owner
	for _, t := range e.sm.Cat.Tables() {
		if o := t.Heap.StampOwner(pid); o != nil {
			tbl, tok = t, o
			break
		}
	}
	if tbl == nil {
		finish(buffer.PageSnapshot{}, false)
		return
	}
	e.topoMu.RLock()
	var p *partition
	for _, q := range e.tableParts[tbl.ID] {
		if q.token == tok {
			p = q
			break
		}
	}
	e.topoMu.RUnlock()
	if p == nil {
		finish(buffer.PageSnapshot{}, false)
		return
	}
	var snap buffer.PageSnapshot
	var got bool
	heap := tbl.Heap
	// No home executor: the continuation runs inline on the owner's
	// thread, strictly after fn — snap/got need no synchronization.
	m := &maintContMsg{contReply: contReply{k: func(ok bool) {
		finish(snap, ok && got)
	}}, fn: func(ctx *OwnerCtx) {
		snap, got = heap.SnapshotOwnedPage(ctx.p.token, pid)
	}}
	if det := e.shipDet; det != nil {
		m.path = det.extendPath(p.worker, false)
	}
	if !p.in.pushChecked(m) {
		finish(buffer.PageSnapshot{}, false)
	}
}
