package dora

import (
	"fmt"

	"dora/internal/dora/router"
	"dora/internal/metrics"
)

// PartitionStat is a monitoring snapshot of one micro-engine.
type PartitionStat struct {
	Table    string `json:"table"`
	Worker   int    `json:"worker"`
	QueueLen int    `json:"queue_len"`
	// QueueCont is how much of QueueLen is continuation traffic (ships,
	// continuation deliveries) rather than routed actions.
	QueueCont int   `json:"queue_cont"`
	Waiting   int64 `json:"waiting"` // actions parked in the local lock table
	Executed  int64 `json:"executed"`
	Waited    int64 `json:"waited"`
	// Shipped counts blocking (parked-sender) foreign access-path
	// operations executed on this worker; ContShipped counts
	// continuation-passing ones; KontRun counts continuations delivered
	// back to this worker (completions of foreign operations it
	// suspended on).
	Shipped     int64 `json:"shipped"`
	ContShipped int64 `json:"cont_shipped"`
	KontRun     int64 `json:"kont_run"`
	// Suspended is the number of this worker's actions currently
	// suspended on in-flight foreign operations; OverlapExec counts
	// actions it executed while at least one was suspended — the
	// sender-thread-utilization signal of experiment E14.
	Suspended   int64 `json:"suspended"`
	OverlapExec int64 `json:"overlap_exec"`
	HeldKeys    int64 `json:"held_keys"`
	// Lock-hierarchy accounting (see LockStats for field meanings) and
	// the OS-thread migrations observed at ticks (zero while pinned).
	LockAcquisitions int64 `json:"lock_acquisitions"`
	RangeLocks       int64 `json:"range_locks"`
	Escalations      int64 `json:"escalations"`
	Deescalations    int64 `json:"deescalations"`
	ThreadSwitches   int64 `json:"thread_switches"`
	// Ranges is the number of routing ranges assigned to this worker and
	// Width their total value-space width.
	Ranges int   `json:"ranges"`
	Width  int64 `json:"width"`
}

// PartitionStats snapshots every live partition (monitor, balancer).
func (e *Dora) PartitionStats() []PartitionStat {
	e.topoMu.RLock()
	defer e.topoMu.RUnlock()
	var out []PartitionStat
	for tblID, parts := range e.tableParts {
		rt := e.routers[tblID]
		for _, p := range parts {
			st := PartitionStat{
				Table:       p.tbl.Name,
				Worker:      p.worker,
				QueueLen:    p.queueLen(),
				QueueCont:   p.in.contLength(),
				Waiting:     p.WaitingNow.Load(),
				Executed:    p.Executed.Load(),
				Waited:      p.Waited.Load(),
				Shipped:     p.Shipped.Load(),
				ContShipped: p.ContShipped.Load(),
				KontRun:     p.KontRun.Load(),
				Suspended:   p.SuspendedNow.Load(),
				OverlapExec: p.OverlapExec.Load(),
				HeldKeys:    p.HeldKeys.Load(),

				LockAcquisitions: p.LockAcquisitions.Load(),
				RangeLocks:       p.RangeLocks.Load(),
				Escalations:      p.Escalations.Load(),
				Deescalations:    p.Deescalations.Load(),
				ThreadSwitches:   p.ThreadSwitches.Load(),
			}
			if rt != nil {
				for _, r := range rt.Ranges() {
					if r.Part == p.worker {
						st.Ranges++
						st.Width += r.Hi - r.Lo + 1
					}
				}
			}
			out = append(out, st)
		}
	}
	return out
}

// ShipStats aggregates the engine's ship accounting across all live
// partitions (monitor, experiment E14).
type ShipStats struct {
	// BlockingShips / ContShips are foreign operations executed on owner
	// threads, by protocol; KontsRun counts delivered continuations.
	BlockingShips int64 `json:"blocking_ships"`
	ContShips     int64 `json:"cont_ships"`
	KontsRun      int64 `json:"konts_run"`
	// SuspendedNow is the engine-wide number of actions currently
	// suspended on in-flight foreign operations; OverlapExec the total
	// actions executed by workers while they had one suspended.
	SuspendedNow int64 `json:"suspended_now"`
	OverlapExec  int64 `json:"overlap_exec"`
	// ContQueue is the current inbox depth contributed by continuation
	// traffic, summed over workers.
	ContQueue int64 `json:"cont_queue"`
	// AsyncResolves counts unaligned-action resolver probes run in
	// continuation-passing form during phase dispatch.
	AsyncResolves int64 `json:"async_resolves"`
	// CyclesDiagnosed / LastCycle report the debug-mode detector's
	// non-fatal cycle diagnoses (continuation mode only; zero/"" when
	// the detector is off or fail-fast).
	CyclesDiagnosed int64  `json:"cycles_diagnosed,omitempty"`
	LastCycle       string `json:"last_cycle,omitempty"`
	// ShipRetries counts fail-back re-resolutions of shipped operations
	// (stale hop or retired owner during rebalancing), summed over the
	// access-path retry loops and ExecOnOwner; ShipRetryWaits is the
	// subset that slept under the capped exponential backoff instead of
	// just yielding.
	ShipRetries    int64 `json:"ship_retries"`
	ShipRetryWaits int64 `json:"ship_retry_waits"`
}

// ShipSnapshot sums ship statistics over every live partition, plus the
// accumulated history of workers merged away (cumulative totals never
// decrease across rebalancing).
func (e *Dora) ShipSnapshot() ShipStats {
	var s ShipStats
	// Retired totals are read under the same topology lock that merges
	// fold them under, so a worker is always counted as exactly one of
	// live or retired.
	e.topoMu.RLock()
	s.BlockingShips = e.retiredShips.blocking.Load()
	s.ContShips = e.retiredShips.cont.Load()
	s.KontsRun = e.retiredShips.konts.Load()
	s.OverlapExec = e.retiredShips.overlap.Load()
	for _, parts := range e.tableParts {
		for _, p := range parts {
			s.BlockingShips += p.Shipped.Load()
			s.ContShips += p.ContShipped.Load()
			s.KontsRun += p.KontRun.Load()
			s.SuspendedNow += p.SuspendedNow.Load()
			s.OverlapExec += p.OverlapExec.Load()
			s.ContQueue += int64(p.in.contLength())
		}
	}
	e.topoMu.RUnlock()
	s.AsyncResolves = e.AsyncResolves.Load()
	if det := e.shipDet; det != nil {
		s.CyclesDiagnosed = det.Cycles.Load()
		s.LastCycle = det.LastCycle()
	}
	s.ShipRetries = e.shipRetries.Load()
	s.ShipRetryWaits = e.shipRetryWaits.Load()
	for _, tbl := range e.sm.Cat.Tables() {
		for _, ix := range tbl.Indexes() {
			if pt := ix.Partitioned(); pt != nil {
				r, w := pt.ShipRetryStats()
				s.ShipRetries += r
				s.ShipRetryWaits += w
			}
		}
	}
	return s
}

// LockStats aggregates the local lock tables' hierarchy accounting
// across all live partitions plus retired history (monitor, E19).
type LockStats struct {
	// Acquisitions counts lock-table grant operations: per key in the
	// flat tables, per hierarchy node in the hierarchical ones — the
	// O(keys) vs O(1) range-scan signal.
	Acquisitions int64 `json:"acquisitions"`
	// RangeLocks counts coarse (granule- or partition-level) S/X grants
	// taken by ranged actions.
	RangeLocks int64 `json:"range_locks"`
	// Escalations / Deescalations count lock escalation events and the
	// release of escalated holds.
	Escalations   int64 `json:"escalations"`
	Deescalations int64 `json:"deescalations"`
	// KeyProbes / RangeProbes count maintenance busy-gating probes:
	// per-record KeyBusy checks vs one-intent RangeBusy checks.
	KeyProbes   int64 `json:"key_probes"`
	RangeProbes int64 `json:"range_probes"`
	// ThreadSwitches counts worker OS-thread migrations observed at
	// ticks (zero while pinned, the default).
	ThreadSwitches int64 `json:"thread_switches"`
}

// retiredLockStats accumulates the lock accounting of tables that went
// away (workers merged, tables cleared by Repartition); atomic because
// the folding happens on worker threads and under the topology lock.
type retiredLockStats struct {
	acq, rng, esc, deesc, keyProbes, rangeProbes metrics.Counter
}

func (r *retiredLockStats) fold(st lockStats) {
	r.acq.Add(st.acquisitions)
	r.rng.Add(st.rangeLocks)
	r.esc.Add(st.escalations)
	r.deesc.Add(st.deescalations)
	r.keyProbes.Add(st.keyProbes)
	r.rangeProbes.Add(st.rangeProbes)
}

// LockSnapshot sums lock-table statistics over every live partition plus
// the retired history (cumulative totals never decrease across
// rebalancing, like ShipSnapshot).
func (e *Dora) LockSnapshot() LockStats {
	var s LockStats
	e.topoMu.RLock()
	s.Acquisitions = e.retiredLocks.acq.Load()
	s.RangeLocks = e.retiredLocks.rng.Load()
	s.Escalations = e.retiredLocks.esc.Load()
	s.Deescalations = e.retiredLocks.deesc.Load()
	s.KeyProbes = e.retiredLocks.keyProbes.Load()
	s.RangeProbes = e.retiredLocks.rangeProbes.Load()
	for _, parts := range e.tableParts {
		for _, p := range parts {
			s.Acquisitions += p.LockAcquisitions.Load()
			s.RangeLocks += p.RangeLocks.Load()
			s.Escalations += p.Escalations.Load()
			s.Deescalations += p.Deescalations.Load()
			s.KeyProbes += p.MaintKeyProbes.Load()
			s.RangeProbes += p.MaintRangeProbes.Load()
			s.ThreadSwitches += p.ThreadSwitches.Load()
		}
	}
	e.topoMu.RUnlock()
	return s
}

// SplitPartition splits the range of worker `from` of table `table` at
// value mid: keys >= mid move to a freshly started micro-engine. The
// migration is safe while transactions run: the new partition buffers
// arriving work until the lock-table state for its range is adopted.
func (e *Dora) SplitPartition(table string, from int, mid int64) (int, error) {
	tbl := e.sm.Cat.Table(table)
	if tbl == nil {
		return 0, fmt.Errorf("dora: unknown table %q", table)
	}
	e.topoMu.Lock()
	src := e.byWorker[from]
	if src == nil || src.tbl != tbl {
		e.topoMu.Unlock()
		return 0, fmt.Errorf("dora: worker %d does not serve %s", from, table)
	}
	rt := e.routers[tbl.ID]
	q := newPartition(e, tbl, e.nextWorker, true /* buffer until adopt */)
	e.nextWorker++
	moved, err := rt.Split(from, mid, q.worker)
	if err != nil {
		e.topoMu.Unlock()
		return 0, err
	}
	e.byWorker[q.worker] = q
	e.tableParts[tbl.ID] = append(e.tableParts[tbl.ID], q)
	e.wg.Add(1)
	go q.loop()
	e.topoMu.Unlock()

	// Tell the source to hand over the migrated range's lock state and
	// index subtrees. New dispatches for the moved range already go to q
	// (buffered there until the adopt message arrives).
	src.in.push(&splitMsg{at: mid, hi: moved.Hi, to: q})
	e.fireRebalance(table, RebalanceSplit)
	return q.worker, nil
}

// MergePartition retires worker `from` of table `table`, folding its
// ranges and lock-table state into worker `into`. Messages in flight are
// forwarded; the retired worker then exits.
func (e *Dora) MergePartition(table string, from, into int) error {
	tbl := e.sm.Cat.Table(table)
	if tbl == nil {
		return fmt.Errorf("dora: unknown table %q", table)
	}
	e.topoMu.RLock()
	src, dst := e.byWorker[from], e.byWorker[into]
	e.topoMu.RUnlock()
	if src == nil || dst == nil || src.tbl != tbl || dst.tbl != tbl || src == dst {
		return fmt.Errorf("dora: cannot merge %s worker %d into %d", table, from, into)
	}
	// 1. Evacuate lock state first; src enters forwarding mode. Anything
	//    routed to src during the window is forwarded after the adopt
	//    message, preserving order at dst. The hierarchical table moves
	//    wholesale — granules travel with their coarse/escalated holds,
	//    pinned range covers, and parked waiters — so no transaction ever
	//    observes a window where its lock is held by neither table. Order
	//    at the handoff: the evacuating worker extracts from its private
	//    table (latch-free), reassigns subtree claims under the access
	//    path's topology latch, and only then starts forwarding — never
	//    the reverse, so a sender whose parked ship was failed back
	//    re-resolves to claims that already point at the adopter.
	ack := make(chan struct{})
	src.in.push(&evacuateMsg{to: dst, ack: ack})
	<-ack
	// 2. Now repoint the routing rule and drop src from the live set —
	// folding its cumulative ship history into the retired totals under
	// the same topology lock, so no ShipSnapshot ever observes the
	// worker as neither live nor retired (the counters are final: a
	// forwarder executes nothing).
	e.topoMu.Lock()
	e.routers[tbl.ID].Reassign(from, into)
	parts := e.tableParts[tbl.ID]
	for i, p := range parts {
		if p == src {
			e.tableParts[tbl.ID] = append(parts[:i], parts[i+1:]...)
			break
		}
	}
	delete(e.byWorker, from)
	e.retiredShips.blocking.Add(src.Shipped.Load())
	e.retiredShips.cont.Add(src.ContShipped.Load())
	e.retiredShips.konts.Add(src.KontRun.Load())
	e.retiredShips.overlap.Add(src.OverlapExec.Load())
	// The lock gauges are final too: a forwarder acquires nothing. The
	// evacuation already moved the table's state; its accounting stays
	// behind and retires here.
	e.retiredLocks.acq.Add(src.LockAcquisitions.Load())
	e.retiredLocks.rng.Add(src.RangeLocks.Load())
	e.retiredLocks.esc.Add(src.Escalations.Load())
	e.retiredLocks.deesc.Add(src.Deescalations.Load())
	e.retiredLocks.keyProbes.Add(src.MaintKeyProbes.Load())
	e.retiredLocks.rangeProbes.Add(src.MaintRangeProbes.Load())
	e.topoMu.Unlock()
	// 3. Let the forwarder drain and die.
	dack := make(chan struct{})
	src.in.push(&dieMsg{ack: dack})
	<-dack
	e.fireRebalance(table, RebalanceMerge)
	return nil
}

// Repartition changes the partitioning FIELD of a table (the alignment
// advisor's remedy in experiment E7). The engine quiesces: it waits for
// all in-flight transactions, swaps the routing rule to a uniform split
// of the new field's domain over the same workers, and clears the (now
// empty) local lock tables.
func (e *Dora) Repartition(table, field string, lo, hi int64) error {
	tbl := e.sm.Cat.Table(table)
	if tbl == nil {
		return fmt.Errorf("dora: unknown table %q", table)
	}
	if tbl.FieldIndex(field) < 0 {
		return fmt.Errorf("dora: table %s has no field %q", table, field)
	}
	e.execGate.Lock() // waits for every Exec's RLock to drain
	defer e.execGate.Unlock()

	// The access path was partitioned for the OLD field's key mapping:
	// drop the ownership, and with it the heap-page stamps (the pages'
	// record-to-owner assignment is about to change meaning).
	e.releaseAccessPaths(tbl)
	tbl.Heap.ReleaseStamps()

	e.topoMu.Lock()
	parts := append([]*partition(nil), e.tableParts[tbl.ID]...)
	handles := make([]int, len(parts))
	for i, p := range parts {
		handles[i] = p.worker
	}
	nrt := router.NewUniform(field, lo, hi, handles)
	e.routers[tbl.ID].Replace(field, nrt.Ranges())
	tbl.SetPartitionField(field)
	e.topoMu.Unlock()

	// No transactions are active, so the lock tables must be empty;
	// clear them anyway via the owning workers (the table's key space
	// changed meaning).
	acks := make([]chan struct{}, len(parts))
	for i, p := range parts {
		acks[i] = make(chan struct{})
		p.in.push(&clearMsg{ack: acks[i]})
	}
	for _, a := range acks {
		<-a
	}
	// Re-claim, under the same quiesce, every index routable on the NEW
	// field (the identity case: repartitioning back onto a field an
	// index declares a RouteRange for). Indexes not routable on it stay
	// released on the shared latched path. claimAccessPaths filters by
	// the table's current partition field, which is already `field`.
	if !e.cfg.SharedAccessPath {
		e.claimAccessPaths(tbl)
	}
	e.fireRebalance(table, RebalanceRepartition)
	return nil
}

// NumPartitions returns the live partition count for a table.
func (e *Dora) NumPartitions(table string) int {
	tbl := e.sm.Cat.Table(table)
	if tbl == nil {
		return 0
	}
	e.topoMu.RLock()
	defer e.topoMu.RUnlock()
	return len(e.tableParts[tbl.ID])
}
