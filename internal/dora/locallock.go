package dora

import "dora/internal/xct"

// localLockTable is a partition-private lock table (paper §1.1: "Each
// worker thread receives actions and executes them in a sequential
// fashion while maintaining a private lock table"). Because the owning
// worker is the only thread that ever touches it, it needs no latching —
// this absence is exactly how DORA eliminates the lock manager's
// critical sections.
//
// Keys are values of the table's current partitioning field. Entries
// track granted (transaction, mode) pairs and FIFO waiter queues of
// undispatched actions.
type localLockTable struct {
	entries map[int64]*llEntry
	// byTxn indexes the keys each transaction holds, for O(held) release.
	byTxn map[uint64][]int64
	// waiting counts parked waiters across all entries — the partition's
	// real congestion signal (the inbox drains fast; contention parks
	// actions here). Single-threaded like the rest of the table.
	waiting int
}

type llHold struct {
	txn  uint64
	mode xct.Mode
}

type llEntry struct {
	holders []llHold
	waiters []*actionMsg
}

func newLocalLockTable() *localLockTable {
	return &localLockTable{
		entries: make(map[int64]*llEntry),
		byTxn:   make(map[uint64][]int64),
	}
}

// compatible reports whether a new request in mode m conflicts with an
// existing hold h by a different transaction.
func compatible(h llHold, m xct.Mode) bool {
	return h.mode == xct.Read && m == xct.Read
}

// tryAcquire attempts to grant (txn, mode) on key. FIFO fairness: a new
// request never overtakes existing waiters it conflicts with. A repeated
// request by a holding transaction is granted (upgrading Read→Write only
// when no other holder exists).
func (lt *localLockTable) tryAcquire(key int64, txn uint64, mode xct.Mode) bool {
	e := lt.entries[key]
	if e == nil {
		e = &llEntry{}
		lt.entries[key] = e
	}
	mine := -1
	for i, h := range e.holders {
		if h.txn == txn {
			mine = i
			continue
		}
		if !compatible(h, mode) {
			return false
		}
	}
	if mine >= 0 {
		// Already holding: possibly upgrade. Other-holder conflicts were
		// checked above.
		if mode == xct.Write && e.holders[mine].mode == xct.Read {
			e.holders[mine].mode = xct.Write
		}
		return true
	}
	// FIFO: conflicting waiters ahead of us block the grant.
	for _, w := range e.waiters {
		if w.run.txn.ID == txn {
			continue
		}
		if !(w.act.Mode == xct.Read && mode == xct.Read) {
			return false
		}
	}
	e.holders = append(e.holders, llHold{txn: txn, mode: mode})
	lt.byTxn[txn] = append(lt.byTxn[txn], key)
	return true
}

// wait parks an action at the tail of key's waiter queue.
func (lt *localLockTable) wait(key int64, am *actionMsg) {
	e := lt.entries[key]
	if e == nil {
		e = &llEntry{}
		lt.entries[key] = e
	}
	e.waiters = append(e.waiters, am)
	lt.waiting++
}

// release drops every hold of txn — and any still-waiting claims it has
// (an aborted transaction may never have collected claims for phases
// that never ran) — and returns the actions that became grantable.
func (lt *localLockTable) release(txn uint64) []*actionMsg {
	keys := lt.byTxn[txn]
	delete(lt.byTxn, txn)
	var runnable []*actionMsg
	seen := make(map[int64]bool, len(keys))
	for _, key := range keys {
		if seen[key] {
			continue
		}
		seen[key] = true
		e := lt.entries[key]
		if e == nil {
			continue
		}
		for i := 0; i < len(e.holders); {
			if e.holders[i].txn == txn {
				e.holders = append(e.holders[:i], e.holders[i+1:]...)
			} else {
				i++
			}
		}
		lt.dropWaitersOf(e, txn)
		runnable = append(runnable, lt.promoteWaiters(key, e)...)
		if len(e.holders) == 0 && len(e.waiters) == 0 {
			delete(lt.entries, key)
		}
	}
	// Claims may wait on keys the transaction never held; sweep the rest.
	for key, e := range lt.entries {
		if seen[key] {
			continue
		}
		before := len(e.waiters)
		lt.dropClaimsOf(e, txn)
		if len(e.waiters) != before {
			runnable = append(runnable, lt.promoteWaiters(key, e)...)
			if len(e.holders) == 0 && len(e.waiters) == 0 {
				delete(lt.entries, key)
			}
		}
	}
	return runnable
}

// dropWaitersOf removes every waiting claim of txn on e (the real actions
// of txn always resolve before release; claims may not).
func (lt *localLockTable) dropWaitersOf(e *llEntry, txn uint64) {
	lt.dropClaimsOf(e, txn)
}

func (lt *localLockTable) dropClaimsOf(e *llEntry, txn uint64) {
	kept := e.waiters[:0]
	for _, w := range e.waiters {
		if w.claim && w.run.txn.ID == txn {
			lt.waiting--
			continue
		}
		kept = append(kept, w)
	}
	e.waiters = kept
}

// promoteWaiters grants waiters from the queue front while compatible.
func (lt *localLockTable) promoteWaiters(key int64, e *llEntry) []*actionMsg {
	var out []*actionMsg
	for len(e.waiters) > 0 {
		w := e.waiters[0]
		txn := w.run.txn.ID
		ok := true
		for _, h := range e.holders {
			if h.txn != txn && !compatible(h, w.act.Mode) {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		e.waiters = e.waiters[:copy(e.waiters, e.waiters[1:])]
		lt.waiting--
		// Grant in place (mirrors tryAcquire's same-txn handling).
		granted := false
		for i := range e.holders {
			if e.holders[i].txn == txn {
				if w.act.Mode == xct.Write {
					e.holders[i].mode = xct.Write
				}
				granted = true
				break
			}
		}
		if !granted {
			e.holders = append(e.holders, llHold{txn: txn, mode: w.act.Mode})
			lt.byTxn[txn] = append(lt.byTxn[txn], key)
		}
		out = append(out, w)
	}
	return out
}

// extractAbove removes and returns all entries with key >= cut (split
// migration). Waiter actions travel with their entries.
func (lt *localLockTable) extractAbove(cut int64) map[int64]*llEntry {
	moved := make(map[int64]*llEntry)
	for key, e := range lt.entries {
		if key >= cut {
			moved[key] = e
			lt.waiting -= len(e.waiters)
			delete(lt.entries, key)
		}
	}
	// Fix the byTxn index.
	for txn, keys := range lt.byTxn {
		kept := keys[:0]
		for _, k := range keys {
			if k < cut {
				kept = append(kept, k)
			}
		}
		if len(kept) == 0 {
			delete(lt.byTxn, txn)
		} else {
			lt.byTxn[txn] = kept
		}
	}
	return moved
}

// extractAll removes and returns every entry (merge/evacuate migration).
func (lt *localLockTable) extractAll() map[int64]*llEntry {
	moved := lt.entries
	lt.entries = make(map[int64]*llEntry)
	lt.byTxn = make(map[uint64][]int64)
	lt.waiting = 0
	return moved
}

// adopt merges entries migrated from another partition. Key spaces are
// disjoint by construction (the ranges were disjoint), but the map may
// already hold an entry if an action for a migrated key arrived during
// the hand-off window; the adopted holders/waiters are then prepended,
// preserving their seniority.
func (lt *localLockTable) adopt(entries map[int64]*llEntry) []*actionMsg {
	var runnable []*actionMsg
	for key, in := range entries {
		lt.waiting += len(in.waiters)
		cur := lt.entries[key]
		if cur == nil {
			lt.entries[key] = in
		} else {
			// Adopted state is older: it goes first.
			in.holders = append(in.holders, cur.holders...)
			in.waiters = append(in.waiters, cur.waiters...)
			lt.entries[key] = in
		}
		e := lt.entries[key]
		for _, h := range e.holders {
			lt.byTxn[h.txn] = append(lt.byTxn[h.txn], key)
		}
		runnable = append(runnable, lt.promoteWaiters(key, e)...)
	}
	return runnable
}

// heldKeys reports how many keys are currently locked (statistics).
func (lt *localLockTable) heldKeys() int { return len(lt.entries) }
