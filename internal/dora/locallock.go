package dora

import "dora/internal/xct"

// Partition-private local lock tables (paper §1.1: "Each worker thread
// receives actions and executes them in a sequential fashion while
// maintaining a private lock table"). Because the owning worker is the
// only thread that ever touches its table, no latching is needed — this
// absence is exactly how DORA eliminates the lock manager's critical
// sections.
//
// Two implementations exist behind the lockTable interface:
//
//   - flatLockTable: the historical per-key map. Every logical lock is a
//     key-level entry; a ranged action expands to one lock per routing
//     value in its interval, and maintenance gates key by key. The
//     Config.FlatLocks measurement baseline (experiment E19).
//   - hierLockTable (hierlock.go): a multigranularity hierarchy,
//     partition → granule (key range) → key, with IS/IX/S/SIX/X modes,
//     one-coarse-lock range scans, and per-transaction lock escalation.
//     The default.
//
// Keys are values of the table's current partitioning field. Entries
// track granted (transaction, mode) pairs and FIFO waiter queues of
// undispatched actions.

// lockTable is what a partition worker requires of its private table.
// All methods run on the owning worker's thread only.
type lockTable interface {
	// acquire attempts to grant am's lock (point or ranged). On failure
	// it records where the request blocked (am.wnLevel/wnID) so wait can
	// park the action there; partial grants (range prefixes, hierarchy
	// intents) are retained — the transaction's release drops them.
	acquire(am *actionMsg) bool
	// wait parks am at the node acquire blocked it on.
	wait(am *actionMsg)
	// release drops every hold of txn — and any still-waiting claims it
	// has — and returns the actions that became grantable (their locks
	// are already granted).
	release(txn uint64) []*actionMsg
	// extractAbove removes and returns the lock state for keys >= cut
	// (split migration); extractAll removes everything (merge/evacuate).
	// Waiter actions travel with the state; coarse holds covering both
	// sides of a split are duplicated so coverage is preserved.
	extractAbove(cut int64) *movedLocks
	extractAll() *movedLocks
	// adopt merges state migrated from another partition, returning
	// newly grantable actions.
	adopt(mv *movedLocks) []*actionMsg
	// sweepWaiters visits every parked waiter; keep=false removes it
	// (the caller has already reported/aborted it).
	sweepWaiters(judge func(am *actionMsg) (keep bool))
	// keyBusy reports whether routing value v has any lock state (held
	// or waited, at any granularity covering it); rangeBusy asks the
	// same for an inclusive interval with O(active-granules) probes —
	// the maintenance daemon's one-intent gate. Both may over-report
	// (coarse coverage), never under-report.
	keyBusy(v int64) bool
	rangeBusy(lo, hi int64) bool
	// coarseProbes reports whether rangeBusy is cheap (hierarchical
	// table: O(granules-with-state)). The flat table answers false — its
	// range probe sweeps every entry, so maintenance sticks to per-key
	// probes there.
	coarseProbes() bool
	// heldKeys / waitingCount mirror table size and parked waiters for
	// the monitor.
	heldKeys() int
	waitingCount() int
	// snapshotStats copies the table's accounting.
	snapshotStats() lockStats
}

// lockStats is the single-threaded accounting every table keeps; the
// partition mirrors it into atomic gauges after each inbox batch.
type lockStats struct {
	// acquisitions counts lock-table grant operations: per key for the
	// flat table, per hierarchy node touched for the hierarchical one —
	// the O(keys) vs O(1) signal of experiment E19.
	acquisitions int64
	// rangeLocks counts coarse (granule- or partition-level) S/X grants
	// taken by ranged actions.
	rangeLocks int64
	// escalations / deescalations count per-transaction lock escalation
	// (N key locks under one granule folded into one coarse lock) and
	// the release of escalated holds.
	escalations   int64
	deescalations int64
	// keyProbes / rangeProbes count maintenance busy-gating probes
	// (KeyBusy per record vs RangeBusy per range).
	keyProbes   int64
	rangeProbes int64
}

// movedLocks is lock state in flight between partitions (split/merge).
// Exactly one of keys (flat) or hier (hierarchical) is set; the engine
// configures all partitions with the same table kind.
type movedLocks struct {
	keys map[int64]*llEntry
	hier *hierMoved
}

// waiters counts parked actions travelling with the state.
func (mv *movedLocks) waiters() int {
	n := 0
	if mv == nil {
		return 0
	}
	for _, e := range mv.keys {
		n += len(e.waiters)
	}
	if mv.hier != nil {
		n += len(mv.hier.root.waiters)
		for _, g := range mv.hier.granules {
			n += len(g.node.waiters)
			for _, kn := range g.keys {
				n += len(kn.waiters)
			}
		}
	}
	return n
}

// newLockTable builds the configured table kind.
func newLockTable(cfg *Config) lockTable {
	if cfg.FlatLocks {
		return newFlatLockTable()
	}
	return newHierLockTable(cfg.EscalateAt)
}

// llHold is one granted (transaction, mode) pair. The flat table only
// uses LockS/LockX; the hierarchy uses all five modes.
type llHold struct {
	txn  uint64
	mode xct.LockMode
}

// llEntry is one lock-table node: granted holds plus a FIFO waiter queue.
// The flat table keys them per routing value; the hierarchy reuses the
// shape for its nodes and for migration transfer.
type llEntry struct {
	holders []llHold
	waiters []*actionMsg
}

// wnLevel values: where a blocked action parked (actionMsg.wnLevel).
const (
	wnKey     = 0 // key node (flat: always; hier: key level), id = key
	wnGranule = 1 // hier granule node, id = granule id
	wnRoot    = 2 // hier partition root, id unused
)

// flatLockTable is the historical per-key table.
type flatLockTable struct {
	entries map[int64]*llEntry
	// byTxn indexes the keys each transaction holds, for O(held) release.
	byTxn map[uint64][]int64
	// waiting counts parked waiters across all entries — the partition's
	// real congestion signal (the inbox drains fast; contention parks
	// actions here). Single-threaded like the rest of the table.
	waiting int
	stats   lockStats
}

func newFlatLockTable() *flatLockTable {
	return &flatLockTable{
		entries: make(map[int64]*llEntry),
		byTxn:   make(map[uint64][]int64),
	}
}

// acquire implements lockTable: a point lock on the routing key, or —
// for a ranged action — one lock per value of the interval, ascending.
// A blocked range keeps its prefix (the cursor am.rangeNext resumes
// after the blocking key is granted by promotion).
func (lt *flatLockTable) acquire(am *actionMsg) bool {
	txn := am.run.txn.ID
	a := am.act
	if !a.Ranged {
		if lt.tryAcquire(am.routeKey, txn, a.Mode) {
			return true
		}
		am.wnLevel, am.wnID = wnKey, am.routeKey
		return false
	}
	k := a.RangeLo
	if am.rangeNext > k {
		k = am.rangeNext
	}
	for ; k <= a.RangeHi; k++ {
		if !lt.tryAcquire(k, txn, a.Mode) {
			am.rangeNext = k
			am.wnLevel, am.wnID = wnKey, k
			return false
		}
	}
	am.rangeNext = a.RangeHi + 1
	return true
}

// compatible reports whether a new request in access mode m conflicts
// with an existing hold h by a different transaction.
func compatible(h llHold, m xct.Mode) bool {
	return xct.LockCompatible(h.mode, m.LockFor())
}

// tryAcquire attempts to grant (txn, mode) on key. FIFO fairness: a new
// request never overtakes existing waiters it conflicts with. A repeated
// request by a holding transaction is granted (upgrading Read→Write only
// when no other holder exists).
func (lt *flatLockTable) tryAcquire(key int64, txn uint64, mode xct.Mode) bool {
	lt.stats.acquisitions++
	e := lt.entries[key]
	if e == nil {
		e = &llEntry{}
		lt.entries[key] = e
	}
	mine := -1
	for i, h := range e.holders {
		if h.txn == txn {
			mine = i
			continue
		}
		if !compatible(h, mode) {
			return false
		}
	}
	if mine >= 0 {
		// Already holding: possibly upgrade. Other-holder conflicts were
		// checked above.
		if mode == xct.Write && e.holders[mine].mode == xct.LockS {
			e.holders[mine].mode = xct.LockX
		}
		return true
	}
	// FIFO: conflicting waiters ahead of us block the grant.
	for _, w := range e.waiters {
		if w.run.txn.ID == txn {
			continue
		}
		if !xct.LockCompatible(w.act.Mode.LockFor(), mode.LockFor()) {
			return false
		}
	}
	e.holders = append(e.holders, llHold{txn: txn, mode: mode.LockFor()})
	lt.byTxn[txn] = append(lt.byTxn[txn], key)
	return true
}

// wait parks an action at the tail of the blocking key's waiter queue.
func (lt *flatLockTable) wait(am *actionMsg) {
	key := am.wnID
	e := lt.entries[key]
	if e == nil {
		e = &llEntry{}
		lt.entries[key] = e
	}
	e.waiters = append(e.waiters, am)
	lt.waiting++
}

// release drops every hold of txn — and any still-waiting claims it has
// (an aborted transaction may never have collected claims for phases
// that never ran) — and returns the actions that became grantable.
func (lt *flatLockTable) release(txn uint64) []*actionMsg {
	keys := lt.byTxn[txn]
	delete(lt.byTxn, txn)
	var runnable []*actionMsg
	seen := make(map[int64]bool, len(keys))
	for _, key := range keys {
		if seen[key] {
			continue
		}
		seen[key] = true
		e := lt.entries[key]
		if e == nil {
			continue
		}
		for i := 0; i < len(e.holders); {
			if e.holders[i].txn == txn {
				e.holders = append(e.holders[:i], e.holders[i+1:]...)
			} else {
				i++
			}
		}
		lt.dropClaimsOf(e, txn)
		runnable = append(runnable, lt.promoteWaiters(key, e)...)
		if len(e.holders) == 0 && len(e.waiters) == 0 {
			delete(lt.entries, key)
		}
	}
	// Claims may wait on keys the transaction never held; sweep the rest.
	for key, e := range lt.entries {
		if seen[key] {
			continue
		}
		before := len(e.waiters)
		lt.dropClaimsOf(e, txn)
		if len(e.waiters) != before {
			runnable = append(runnable, lt.promoteWaiters(key, e)...)
			if len(e.holders) == 0 && len(e.waiters) == 0 {
				delete(lt.entries, key)
			}
		}
	}
	return runnable
}

// dropClaimsOf removes every waiting claim of txn on e (the real actions
// of txn always resolve before release; claims may not).
func (lt *flatLockTable) dropClaimsOf(e *llEntry, txn uint64) {
	kept := e.waiters[:0]
	for _, w := range e.waiters {
		if w.claim && w.run.txn.ID == txn {
			lt.waiting--
			continue
		}
		kept = append(kept, w)
	}
	e.waiters = kept
}

// promoteWaiters grants waiters from the queue front while compatible.
// A promoted ranged waiter additionally resumes acquiring the rest of
// its interval; when a later key blocks it, it re-parks there instead of
// becoming runnable.
func (lt *flatLockTable) promoteWaiters(key int64, e *llEntry) []*actionMsg {
	var out []*actionMsg
	for len(e.waiters) > 0 {
		w := e.waiters[0]
		txn := w.run.txn.ID
		ok := true
		for _, h := range e.holders {
			if h.txn != txn && !compatible(h, w.act.Mode) {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		e.waiters = e.waiters[:copy(e.waiters, e.waiters[1:])]
		lt.waiting--
		// Grant in place (mirrors tryAcquire's same-txn handling).
		granted := false
		for i := range e.holders {
			if e.holders[i].txn == txn {
				if w.act.Mode == xct.Write {
					e.holders[i].mode = xct.LockX
				}
				granted = true
				break
			}
		}
		if !granted {
			e.holders = append(e.holders, llHold{txn: txn, mode: w.act.Mode.LockFor()})
			lt.byTxn[txn] = append(lt.byTxn[txn], key)
		}
		if w.act.Ranged && key >= w.rangeNext {
			// Resume the interval past the key just granted; a block at a
			// later key re-parks the waiter there (never at this key
			// again — the cursor only ascends).
			w.rangeNext = key + 1
			if !lt.acquire(w) {
				lt.wait(w)
				continue
			}
		}
		out = append(out, w)
	}
	return out
}

// sweepWaiters implements lockTable.
func (lt *flatLockTable) sweepWaiters(judge func(*actionMsg) bool) {
	for key, e := range lt.entries {
		kept := e.waiters[:0]
		for _, w := range e.waiters {
			if judge(w) {
				kept = append(kept, w)
			} else {
				lt.waiting--
			}
		}
		e.waiters = kept
		if len(e.holders) == 0 && len(e.waiters) == 0 {
			delete(lt.entries, key)
		}
	}
}

// extractAbove removes and returns all entries with key >= cut (split
// migration). Waiter actions travel with their entries.
func (lt *flatLockTable) extractAbove(cut int64) *movedLocks {
	moved := make(map[int64]*llEntry)
	for key, e := range lt.entries {
		if key >= cut {
			moved[key] = e
			lt.waiting -= len(e.waiters)
			delete(lt.entries, key)
		}
	}
	// Fix the byTxn index.
	for txn, keys := range lt.byTxn {
		kept := keys[:0]
		for _, k := range keys {
			if k < cut {
				kept = append(kept, k)
			}
		}
		if len(kept) == 0 {
			delete(lt.byTxn, txn)
		} else {
			lt.byTxn[txn] = kept
		}
	}
	return &movedLocks{keys: moved}
}

// extractAll removes and returns every entry (merge/evacuate migration).
func (lt *flatLockTable) extractAll() *movedLocks {
	moved := lt.entries
	lt.entries = make(map[int64]*llEntry)
	lt.byTxn = make(map[uint64][]int64)
	lt.waiting = 0
	return &movedLocks{keys: moved}
}

// adopt merges entries migrated from another partition. Key spaces are
// disjoint by construction (the ranges were disjoint), but the map may
// already hold an entry if an action for a migrated key arrived during
// the hand-off window; the adopted holders/waiters are then prepended,
// preserving their seniority.
func (lt *flatLockTable) adopt(mv *movedLocks) []*actionMsg {
	if mv.hier != nil {
		// The engine configures every partition with the same table kind;
		// hierarchical state can only arrive here through a bug.
		panic("dora: hierarchical lock state adopted into a flat table")
	}
	var runnable []*actionMsg
	for key, in := range mv.keys {
		lt.waiting += len(in.waiters)
		cur := lt.entries[key]
		if cur == nil {
			lt.entries[key] = in
		} else {
			// Adopted state is older: it goes first.
			in.holders = append(in.holders, cur.holders...)
			in.waiters = append(in.waiters, cur.waiters...)
			lt.entries[key] = in
		}
		e := lt.entries[key]
		for _, h := range e.holders {
			lt.byTxn[h.txn] = append(lt.byTxn[h.txn], key)
		}
		runnable = append(runnable, lt.promoteWaiters(key, e)...)
	}
	return runnable
}

// keyBusy reports whether the routing value has any entry (held or
// waited). Maintenance skips records of busy values: an in-flight
// transaction may hold undo entries naming their current RIDs, and
// migration would invalidate them.
func (lt *flatLockTable) keyBusy(v int64) bool {
	lt.stats.keyProbes++
	return lt.entries[v] != nil
}

// rangeBusy reports whether any value of [lo, hi] has an entry. The flat
// table has no coarse summary, so this is an O(entries) sweep — the
// per-key cost the hierarchy's granule nodes remove.
func (lt *flatLockTable) rangeBusy(lo, hi int64) bool {
	lt.stats.rangeProbes++
	for key := range lt.entries {
		if lo <= key && key <= hi {
			return true
		}
	}
	return false
}

// heldKeys reports how many keys are currently locked (statistics).
func (lt *flatLockTable) heldKeys() int { return len(lt.entries) }

func (lt *flatLockTable) waitingCount() int { return lt.waiting }

func (lt *flatLockTable) coarseProbes() bool { return false }

func (lt *flatLockTable) snapshotStats() lockStats { return lt.stats }
