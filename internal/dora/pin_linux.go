//go:build linux

package dora

import "syscall"

// osThreadID returns the kernel task id of the calling thread — the
// identity whose changes ThreadSwitches counts. Linux only; elsewhere
// the counter reads zero.
func osThreadID() int64 { return int64(syscall.Gettid()) }
