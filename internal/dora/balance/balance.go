// Package balance implements the demo's two load-balancing components
// (paper §2.2 "Load balancing"):
//
//  1. Balancer — "observes the action queues of each worker thread and
//     re-partitions, reducing the load of threads whose input queue is
//     long, while merging partitions of the threads whose action queues
//     are not loaded". It periodically samples per-partition queue
//     lengths and executed-action deltas, splits the range of overloaded
//     micro-engines at the midpoint, and folds idle micro-engines into a
//     neighbour.
//
//  2. AlignmentAdvisor — "observes a rapid increase in the number of
//     non-partition aligned accesses [and] suggests adjusting the
//     partitions based on the fields that are most frequently used".
//     It samples the engine's alignment statistics and emits a
//     Suggestion naming the field to re-partition on; callers apply it
//     with Dora.Repartition.
package balance

import (
	"sync"
	"time"

	"dora/internal/dora"
	"dora/internal/metrics"
)

// Policy tunes the queue balancer.
type Policy struct {
	// Every is the observation period (default 50ms).
	Every time.Duration
	// SplitFactor: a partition splits when its load (executed-delta +
	// queue + parked waiters) exceeds SplitFactor times the mean load of
	// the other partitions (default 2.0).
	SplitFactor float64
	// MergeFactor is retained for configuration compatibility; merging
	// is driven by consecutive idle samples (see observe).
	MergeFactor float64
	// MinQueue is the minimum hot-queue length worth reacting to
	// (default 8): below it, imbalance is noise.
	MinQueue int
	// MaxParts and MinParts bound the partition count per table
	// (defaults 16 and 1).
	MaxParts, MinParts int
}

func (p *Policy) fill() {
	if p.Every <= 0 {
		p.Every = 50 * time.Millisecond
	}
	if p.SplitFactor <= 1 {
		p.SplitFactor = 2.0
	}
	if p.MergeFactor <= 0 {
		p.MergeFactor = 0.25
	}
	if p.MinQueue <= 0 {
		p.MinQueue = 8
	}
	if p.MaxParts <= 0 {
		p.MaxParts = 16
	}
	if p.MinParts <= 0 {
		p.MinParts = 1
	}
}

// Balancer watches a Dora engine and re-partitions tables in real time.
type Balancer struct {
	eng    *dora.Dora
	pol    Policy
	stop   chan struct{}
	wg     sync.WaitGroup
	tables []string

	// maintGate, when set, reports whether a table's physical layout is
	// still converging under the maintenance daemon (see SetMaintGate).
	// loadGate, when set and returning true, defers every decision: the
	// overload autopilot installs its Shedding probe so repartitions
	// never pile quiesce pauses on top of an SLO violation. Guarded by
	// gateMu: gates may be installed while the observation loop runs.
	gateMu    sync.Mutex
	maintGate func(table string) bool
	loadGate  func() bool

	// lastExec tracks per-worker executed counts between samples; idle
	// counts consecutive samples with no work (merge candidates).
	lastExec map[int]int64
	idle     map[int]int

	// Splits and Merges count re-partitioning decisions taken; Deferred
	// counts decisions withheld because maintenance was still converging
	// the table (maintenance-aware balancing).
	Splits   metrics.Counter
	Merges   metrics.Counter
	Deferred metrics.Counter
}

// SetMaintGate installs the maintenance daemon's convergence probe
// (typically maint.Daemon.Converging). While the probe reports true for
// a table, the balancer defers split and merge decisions on it: a
// topology change mid-migration would strand freshly moved pages on the
// wrong owner and make the daemon re-migrate them. Load imbalance only
// delays — the next sample after convergence acts on it.
func (b *Balancer) SetMaintGate(gate func(table string) bool) {
	b.gateMu.Lock()
	b.maintGate = gate
	b.gateMu.Unlock()
}

// SetLoadGate installs (or clears, with nil) the overload pacing gate:
// while it returns true the balancer defers split and merge decisions
// on every table (counted in Deferred). A split or merge quiesces
// in-flight work on the partitions it touches — exactly the wrong
// moment is while the admission controller is already shedding to get
// p99 back under the SLO. The deferred imbalance is acted on by the
// first sample after the gate opens.
func (b *Balancer) SetLoadGate(gate func() bool) {
	b.gateMu.Lock()
	b.loadGate = gate
	b.gateMu.Unlock()
}

// gatedBy reports whether either gate currently defers decisions on
// table.
func (b *Balancer) gatedBy(table string) bool {
	b.gateMu.Lock()
	maint, load := b.maintGate, b.loadGate
	b.gateMu.Unlock()
	if load != nil && load() {
		return true
	}
	return maint != nil && maint(table)
}

// NewBalancer builds (but does not start) a balancer over the named
// tables.
func NewBalancer(eng *dora.Dora, pol Policy, tables ...string) *Balancer {
	pol.fill()
	return &Balancer{
		eng: eng, pol: pol, stop: make(chan struct{}), tables: tables,
		lastExec: make(map[int]int64), idle: make(map[int]int),
	}
}

// Start launches the observation loop.
func (b *Balancer) Start() {
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		t := time.NewTicker(b.pol.Every)
		defer t.Stop()
		for {
			select {
			case <-b.stop:
				return
			case <-t.C:
				for _, tbl := range b.tables {
					b.observe(tbl)
				}
			}
		}
	}()
}

// Stop halts the loop.
func (b *Balancer) Stop() {
	close(b.stop)
	b.wg.Wait()
}

// observe samples one table and takes at most one action (split or
// merge) — gradual adaptation, as the demo slider shows.
func (b *Balancer) observe(table string) {
	stats := statsFor(b.eng, table)
	if len(stats) == 0 {
		return
	}
	// Maintenance-aware: never re-partition a table mid-migration. The
	// sampling state below still updates, so the load picture stays
	// fresh for the first post-convergence sample.
	gated := b.gatedBy(table)
	live := len(stats)
	// Load per partition: work done since the last sample (the worker's
	// share of execution) plus standing queue and parked waiters. Pure
	// queue length misses saturation when closed-loop clients keep
	// queues short while one worker does nearly all the work.
	totalQ := 0
	loads := make(map[int]int, live)
	var hot, cold *dora.PartitionStat
	for i := range stats {
		st := &stats[i]
		delta := st.Executed - b.lastExec[st.Worker]
		b.lastExec[st.Worker] = st.Executed
		l := int(delta) + st.QueueLen + int(st.Waiting)
		loads[st.Worker] = l
		totalQ += l
		if hot == nil || l > loads[hot.Worker] {
			hot = st
		}
		// Idleness: several consecutive samples with no work at all.
		if l == 0 {
			b.idle[st.Worker]++
		} else {
			b.idle[st.Worker] = 0
		}
		if b.idle[st.Worker] >= 3 && (cold == nil || b.idle[st.Worker] > b.idle[cold.Worker]) {
			cold = st
		}
	}
	load := func(st *dora.PartitionStat) int { return loads[st.Worker] }

	// Split: "reducing the load of threads whose input queue is long" —
	// the hottest queue is long in absolute terms and holds more than
	// SplitFactor times its fair share (with one partition, any long
	// queue splits).
	if live < b.pol.MaxParts && load(hot) >= b.pol.MinQueue && hot.Width >= 2 {
		// Compare the hot partition against the mean of the others: it
		// splits when it carries more than SplitFactor times their
		// average load (with one partition, any load splits).
		othersMean := 0.0
		if live > 1 {
			othersMean = float64(totalQ-load(hot)) / float64(live-1)
		}
		if live == 1 || float64(load(hot)) > b.pol.SplitFactor*(othersMean+1) {
			if gated {
				b.Deferred.Inc()
				return
			}
			if mid, ok := b.midpointOf(table, hot.Worker); ok {
				if _, err := b.eng.SplitPartition(table, hot.Worker, mid); err == nil {
					b.Splits.Inc()
					delete(b.idle, hot.Worker)
					return
				}
			}
		}
	}
	// Merge: "merging partitions of the threads whose action queues are
	// not loaded" — a partition idle for several samples folds into the
	// least-loaded survivor, while others still have work.
	if cold != nil && live > b.pol.MinParts && totalQ > 0 {
		if gated {
			b.Deferred.Inc()
			return
		}
		into, bestQ := -1, 1<<30
		for i := range stats {
			st := &stats[i]
			if st.Worker != cold.Worker && load(st) < bestQ {
				into, bestQ = st.Worker, load(st)
			}
		}
		if into >= 0 {
			if err := b.eng.MergePartition(table, cold.Worker, into); err == nil {
				b.Merges.Inc()
				delete(b.idle, cold.Worker)
				delete(b.lastExec, cold.Worker)
			}
		}
	}
}

// midpointOf picks the midpoint of the widest range owned by worker.
func (b *Balancer) midpointOf(table string, worker int) (int64, bool) {
	rt := b.eng.Router(table)
	if rt == nil {
		return 0, false
	}
	var lo, hi int64
	found := false
	for _, r := range rt.Ranges() {
		if r.Part == worker && (!found || r.Hi-r.Lo > hi-lo) {
			lo, hi, found = r.Lo, r.Hi, true
		}
	}
	if !found || hi <= lo {
		return 0, false
	}
	return lo + (hi-lo+1)/2, true
}

func statsFor(eng *dora.Dora, table string) []dora.PartitionStat {
	all := eng.PartitionStats()
	out := all[:0]
	for _, st := range all {
		if st.Table == table {
			out = append(out, st)
		}
	}
	return out
}

// Suggestion is the alignment advisor's output: re-partition Table on
// Field (the demo's "suggests to re-organize the partitioning scheme
// according to the new access field").
type Suggestion struct {
	Table string
	Field string
	// UnalignedShare is the fraction of dispatches that were unaligned.
	UnalignedShare float64
}

// AlignmentAdvisor watches the engine's aligned/unaligned dispatch
// counters and suggests partitioning-field changes.
type AlignmentAdvisor struct {
	eng *dora.Dora
	// Threshold is the unaligned share that triggers a suggestion
	// (default 0.5).
	Threshold float64
	// MinSamples is the minimum dispatch count per table before judging
	// (default 100).
	MinSamples int64
}

// NewAlignmentAdvisor builds an advisor with default thresholds.
func NewAlignmentAdvisor(eng *dora.Dora) *AlignmentAdvisor {
	return &AlignmentAdvisor{eng: eng, Threshold: 0.5, MinSamples: 100}
}

// CheckEngine samples (and resets) the engine's alignment counters and
// returns suggestions. tableName resolves catalog table ids to names.
func (a *AlignmentAdvisor) CheckEngine(tableName func(uint32) string) []Suggestion {
	aligned, unaligned := a.eng.AlignmentStats(true)
	var out []Suggestion
	for tblID, fields := range unaligned {
		var un int64
		hotField, hotCount := "", int64(0)
		for f, c := range fields {
			un += c
			if c > hotCount {
				hotField, hotCount = f, c
			}
		}
		total := un + aligned[tblID]
		if total < a.MinSamples || hotField == "" {
			continue
		}
		share := float64(un) / float64(total)
		if share >= a.Threshold {
			out = append(out, Suggestion{
				Table:          tableName(tblID),
				Field:          hotField,
				UnalignedShare: share,
			})
		}
	}
	return out
}
