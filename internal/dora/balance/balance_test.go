package balance

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dora/internal/catalog"
	"dora/internal/dora"
	"dora/internal/sm"
	"dora/internal/tuple"
	"dora/internal/workload"
	"dora/internal/xct"
)

func rig(t *testing.T, n int64, parts int) (*sm.SM, *catalog.Table, *dora.Dora) {
	t.Helper()
	s, err := sm.Open(sm.Options{Frames: 1024})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := s.CreateTable(sm.TableSpec{
		Name: "kv",
		Fields: []catalog.Field{
			{Name: "k", Type: tuple.TInt},
			{Name: "alt", Type: tuple.TInt},
			{Name: "v", Type: tuple.TInt},
		},
		KeyFields: []string{"k"},
		Key:       func(r tuple.Record) int64 { return r[0].Int },
	})
	if err != nil {
		t.Fatal(err)
	}
	ses := s.Session(0)
	load := s.Begin()
	for i := int64(1); i <= n; i++ {
		if err := ses.Insert(load, tbl, tuple.Record{tuple.I(i), tuple.I(n + 1 - i), tuple.I(0)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(load); err != nil {
		t.Fatal(err)
	}
	e := dora.New(s, dora.Config{
		PartitionsPerTable: parts,
		Domains:            map[string][2]int64{"kv": {1, n}},
	})
	t.Cleanup(func() { _ = e.Close() })
	return s, tbl, e
}

func writeFlow(tbl *catalog.Table, k int64) *xct.Flow {
	return xct.NewFlow("write").AddPhase(&xct.Action{
		Table: "kv", KeyField: "k", Key: k, Mode: xct.Write,
		Run: func(env *xct.Env) error {
			return env.Ses.Mutate(env.Txn, tbl, k, func(r tuple.Record) tuple.Record {
				r[2] = tuple.I(r[2].Int + 1)
				return r
			})
		},
	})
}

func TestBalancerSplitsHotPartition(t *testing.T) {
	_, tbl, e := rig(t, 1000, 2)
	b := NewBalancer(e, Policy{Every: 10 * time.Millisecond, MinQueue: 2, MaxParts: 8}, "kv")
	b.Start()
	defer b.Stop()

	// Hammer a narrow hot range that lands in one partition.
	hot := workload.NewHotspot(1, 1000, 0.95, 50)
	hot.SetCenter(250)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 32; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := hot.Next(rng)
				_ = e.Exec(c, writeFlow(tbl, k))
			}
		}(c)
	}
	deadline := time.After(3 * time.Second)
	for b.Splits.Load() == 0 {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			t.Fatalf("balancer never split (queue stats: %+v)", e.PartitionStats())
		case <-time.After(20 * time.Millisecond):
		}
	}
	close(stop)
	wg.Wait()
	if e.NumPartitions("kv") < 3 {
		t.Fatalf("partitions = %d after split", e.NumPartitions("kv"))
	}
}

// TestBalancerDefersWhileConverging: the maintenance-aware balancer
// withholds split/merge decisions while the maintenance daemon reports
// the table mid-migration, and acts on the standing imbalance as soon
// as convergence is reached.
func TestBalancerDefersWhileConverging(t *testing.T) {
	_, tbl, e := rig(t, 1000, 2)
	var converging atomic.Bool
	converging.Store(true)
	b := NewBalancer(e, Policy{Every: 10 * time.Millisecond, MinQueue: 2, MaxParts: 8}, "kv")
	b.SetMaintGate(func(table string) bool {
		if table != "kv" {
			t.Errorf("gate probed for table %q", table)
		}
		return converging.Load()
	})
	b.Start()
	defer b.Stop()

	hot := workload.NewHotspot(1, 1000, 0.95, 50)
	hot.SetCenter(250)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 32; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = e.Exec(c, writeFlow(tbl, hot.Next(rng)))
			}
		}(c)
	}
	// While converging: the split pressure registers only as deferrals.
	deadline := time.After(3 * time.Second)
	for b.Deferred.Load() == 0 {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			t.Fatalf("no deferred decisions under load (stats: %+v)", e.PartitionStats())
		case <-time.After(20 * time.Millisecond):
		}
	}
	if b.Splits.Load() != 0 {
		close(stop)
		wg.Wait()
		t.Fatalf("balancer split mid-migration (splits=%d)", b.Splits.Load())
	}
	// Converged: the next samples act on the imbalance.
	converging.Store(false)
	deadline = time.After(3 * time.Second)
	for b.Splits.Load() == 0 {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			t.Fatal("balancer never split after convergence")
		case <-time.After(20 * time.Millisecond):
		}
	}
	close(stop)
	wg.Wait()
}

func TestAdvisorSuggestsRepartitioning(t *testing.T) {
	s, tbl, e := rig(t, 500, 2)
	adv := NewAlignmentAdvisor(e)
	adv.MinSamples = 50

	// Run transactions keyed by the "alt" field — all unaligned.
	resolve := func(k int64) xct.Resolver {
		return func(env *xct.Env, field string) (int64, error) {
			// alt = n+1-k bijection: invert directly (stand-in for an
			// index probe; advisors only see the dispatch counters).
			return 501 - k, nil
		}
	}
	for i := int64(1); i <= 100; i++ {
		flow := xct.NewFlow("by-alt").AddPhase(&xct.Action{
			Table: "kv", KeyField: "alt", Key: i, Mode: xct.Read,
			Resolve: resolve(i),
			Run:     func(env *xct.Env) error { return nil },
		})
		if err := e.Exec(0, flow); err != nil {
			t.Fatal(err)
		}
	}
	sugg := adv.CheckEngine(func(id uint32) string {
		if tb := s.Cat.TableByID(id); tb != nil {
			return tb.Name
		}
		return ""
	})
	if len(sugg) != 1 || sugg[0].Table != "kv" || sugg[0].Field != "alt" {
		t.Fatalf("suggestions: %+v", sugg)
	}
	if sugg[0].UnalignedShare < 0.9 {
		t.Fatalf("unaligned share = %f", sugg[0].UnalignedShare)
	}

	// Apply the suggestion; subsequent by-alt accesses become aligned.
	if err := e.Repartition("kv", "alt", 1, 500); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 60; i++ {
		flow := xct.NewFlow("by-alt").AddPhase(&xct.Action{
			Table: "kv", KeyField: "alt", Key: i, Mode: xct.Read,
			Run: func(env *xct.Env) error { return nil },
		})
		if err := e.Exec(0, flow); err != nil {
			t.Fatal(err)
		}
	}
	if again := adv.CheckEngine(func(uint32) string { return "kv" }); len(again) != 0 {
		t.Fatalf("advisor still unhappy after repartition: %+v", again)
	}
	_ = tbl
}

// TestBalancerDefersUnderLoadGate: the overload autopilot's load gate
// defers repartition decisions exactly like the maintenance gate — a
// standing imbalance registers only as deferrals while the system is
// shedding, and is acted on once the gate opens.
func TestBalancerDefersUnderLoadGate(t *testing.T) {
	_, tbl, e := rig(t, 1000, 2)
	var shedding atomic.Bool
	shedding.Store(true)
	b := NewBalancer(e, Policy{Every: 10 * time.Millisecond, MinQueue: 2, MaxParts: 8}, "kv")
	b.SetLoadGate(shedding.Load)
	b.Start()
	defer b.Stop()

	hot := workload.NewHotspot(1, 1000, 0.95, 50)
	hot.SetCenter(250)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 32; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = e.Exec(c, writeFlow(tbl, hot.Next(rng)))
			}
		}(c)
	}
	deadline := time.After(3 * time.Second)
	for b.Deferred.Load() == 0 {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			t.Fatalf("no deferred decisions while shedding (stats: %+v)", e.PartitionStats())
		case <-time.After(20 * time.Millisecond):
		}
	}
	if b.Splits.Load() != 0 {
		close(stop)
		wg.Wait()
		t.Fatalf("balancer repartitioned while shedding (splits=%d)", b.Splits.Load())
	}
	shedding.Store(false)
	deadline = time.After(3 * time.Second)
	for b.Splits.Load() == 0 {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			t.Fatal("balancer never split after shedding cleared")
		case <-time.After(20 * time.Millisecond):
		}
	}
	close(stop)
	wg.Wait()
}
