package dora

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"dora/internal/catalog"
	"dora/internal/tuple"
	"dora/internal/xct"
)

// auditFlow reads span consecutive accounts keys as one phase of point
// actions: on the hierarchical table the run trips per-transaction
// escalation (threshold 4 in the storm rig), so escalated coarse holds
// are constantly being taken, conflicted with by the hot-key writers,
// and de-escalated while the storm migrates the granules they cover.
// Reads, like E19's audit — a phase's point actions grant in parallel,
// so overlapping multi-key WRITE runs could deadlock each other, which
// the lock tables (per the paper) do not detect.
func auditFlow(acct *catalog.Table, base, span int64) *xct.Flow {
	acts := make([]*xct.Action, 0, span)
	for i := int64(0); i < span; i++ {
		k := base + i
		acts = append(acts, &xct.Action{
			Table: "accounts", KeyField: "id", Key: k, Mode: xct.Read,
			Label: "audit",
			Run: func(env *xct.Env) error {
				_, err := env.Ses.Read(env.Txn, acct, k)
				return err
			},
		})
	}
	return xct.NewFlow("audit").AddPhase(acts...)
}

// scanFlow reads an accounts interval under one ranged S request — a
// pinned coarse cover that conflicting writers may not de-escalate.
func scanFlow(acct *catalog.Table, lo, hi int64) *xct.Flow {
	return xct.NewFlow("scan").AddPhase(&xct.Action{
		Table: "accounts", KeyField: "id", Key: lo, Mode: xct.Read,
		Ranged: true, RangeLo: lo, RangeHi: hi, Label: "scan",
		Run: func(env *xct.Env) error {
			return env.Ses.ScanRange(env.Txn, acct, lo, hi,
				func(int64, tuple.Record) bool { return true })
		},
	})
}

// TestEscalationRepartitionStorm drives zipfian hot-key writers,
// escalating multi-key audits, and ranged scanners against repeated
// split/merge cycles under -race: escalated and pinned coarse holds
// must survive extraction, split duplication, and adoption with
// exactly-once commit effects, and both escalation counters must move.
func TestEscalationRepartitionStorm(t *testing.T) {
	const (
		n    = 400
		span = 6
	)
	s, acct, ledger, e := rig2(t, n, 2, Config{EscalateAt: 4})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var execErr error
	var xfers int64
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 11))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				wrote := false
				switch i % 4 {
				case 0: // escalating audit
					err = e.Exec(c, auditFlow(acct, 1+rng.Int63n(n-span), span))
				case 1: // coarse range scan
					lo := 1 + rng.Int63n(n-64)
					err = e.Exec(c, scanFlow(acct, lo, lo+63))
				default: // hot-key writer: 10% of the key space
					err = e.Exec(c, xferFlow2(acct, ledger, 1+rng.Int63n(n/10)))
					wrote = true
				}
				if err != nil {
					mu.Lock()
					if execErr == nil {
						execErr = err
					}
					mu.Unlock()
					return
				}
				if wrote {
					mu.Lock()
					xfers++
					mu.Unlock()
				}
			}
		}(c)
	}
	// The storm: split+merge cycles on accounts while the traffic runs,
	// so coarse holds keep crossing extractAbove/extractAll/adopt.
	storms := 30
	if testing.Short() {
		storms = 8
	}
	for cycle := 0; cycle < storms; cycle++ {
		rt := e.Router("accounts")
		ranges := rt.Ranges()
		r := ranges[cycle%len(ranges)]
		if r.Hi-r.Lo < 2 {
			continue
		}
		nw, err := e.SplitPartition("accounts", r.Part, r.Lo+(r.Hi-r.Lo)/2)
		if err != nil {
			continue // the range moved under us; next cycle
		}
		time.Sleep(time.Millisecond)
		if err := e.MergePartition("accounts", nw, r.Part); err != nil {
			t.Errorf("storm merge: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if execErr != nil {
		t.Fatalf("exec during storm: %v", execErr)
	}
	// Exactly-once: every xfer bumped one accounts row and one ledger
	// row; audits and scans are read-only.
	if got := sumCol(t, s, acct, n); got != n*100+xfers {
		t.Fatalf("accounts total = %d, want %d (lost/double effects under escalation)",
			got, n*100+xfers)
	}
	if got := sumCol(t, s, ledger, n); got != xfers {
		t.Fatalf("ledger total = %d, want %d", got, xfers)
	}
	if ss := e.ShipSnapshot(); ss.SuspendedNow != 0 {
		t.Fatalf("suspended actions leaked: %d", ss.SuspendedNow)
	}
	ls := e.LockSnapshot()
	if ls.Escalations == 0 {
		t.Fatal("storm never escalated — the audit transactions must trip the threshold")
	}
	if ls.Deescalations == 0 {
		t.Fatal("storm never de-escalated")
	}
}
