package dora

import (
	"sync/atomic"
	"time"

	"dora/internal/btree"
	"dora/internal/trace"
	"dora/internal/xct"
)

// Continuation-passing ships (the default execution model; the blocking
// baseline remains selectable with Config.BlockingShips).
//
// A cross-partition operation no longer parks its sender for the round
// trip. The sender enqueues a contMsg — the operation plus a
// continuation plus the hop chain — on the owner's inbox and immediately
// returns to draining its own queue. The owner runs the operation on its
// thread and enqueues the continuation BACK on the sender's inbox (a
// kontMsg), where the suspended action resumes. The phases of a
// transaction still meet only at rendezvous points: an action that
// suspends reports to its RVP from the continuation, and the RVP's
// countdown — not a parked goroutine — triggers the next phase or the
// commit decision (paper §1.1's asynchronous action model, end to end).
//
// Because no sender is ever parked, arbitrary action bodies are
// deadlock-safe by construction: a cyclic ship graph round-trips
// messages instead of wedging workers, which retires the debug-mode
// cycle detector's fail-fast job (it still diagnoses cycles, see
// shipcheck.go). It also changes the rebalance interplay: a worker with
// a suspended action keeps processing split/evacuate messages, so
// repartitioning no longer relies on senders being parked — continuation
// delivery follows the forwarding chain a merge leaves behind.

// contReply is the completion side shared by every continuation ship:
// k(ok) is invoked exactly once, delivered through home (the sender's
// inbox) when one is set, inline on the completing thread otherwise.
// failShip (the never-silently-dropped contract of the shipped
// interface) is a failed delivery: the worker retired without running
// the op and the continuation must re-resolve.
type contReply struct {
	home btree.ContExec
	k    func(ok bool)
	path []shipHop
}

func (m *contReply) deliver(ok bool) {
	if m.home != nil {
		k := m.k
		m.home(func() { k(ok) })
		return
	}
	m.k(ok)
}

func (m *contReply) failShip() { m.deliver(false) }

// contMsg ships a foreign access-path operation with a continuation
// instead of a parked sender: the owner runs fn with its own token,
// then delivers the reply. at is the enqueue time of a hop the latency
// tracer sampled (zero otherwise); the receiving worker turns it into a
// ship-flight span.
type contMsg struct {
	contReply
	fn func(tok *btree.Owner)
	at time.Time
}

// maintContMsg is contMsg for background-maintenance operations (the
// continuation-passing counterpart of maintMsg): fn runs with an
// OwnerCtx view of the partition.
type maintContMsg struct {
	contReply
	fn func(*OwnerCtx)
}

// kontMsg delivers a completed foreign operation's continuation to the
// thread it belongs on — the suspended sender's inbox. Continuations
// must never be lost (a lost one strands its transaction's RVP), so
// dispose forwards them along the merge chain and, with no successor
// left (engine shutdown, access paths already released), runs them
// inline. at is a sampled hop's enqueue time (see contMsg.at).
type kontMsg struct {
	k  func()
	at time.Time
}

// deliverHome enqueues k on this partition's inbox, following the
// forwarding chain a merge leaves behind; with every hop retired it runs
// k inline (shutdown fall-through: the subtrees are back on the shared
// path, so the continuation's accesses need no owner thread).
func (p *partition) deliverHome(k func()) {
	m := &kontMsg{k: k}
	if p.eng.cfg.Tracer.SampleHop() {
		m.at = time.Now()
	}
	for q := p; q != nil; q = q.fwd.Load() {
		if q.in.pushChecked(m) {
			return
		}
	}
	k()
}

// ownerExecAsync is the continuation-passing hook installed into claimed
// subtrees next to ownerExec: it ships fn to this worker's queue and
// returns immediately; the worker delivers the continuation through the
// sender's home executor after running fn. In debug mode the hop chain
// travels with the message and a cyclic ship is diagnosed (non-fatally —
// a non-blocking sender cannot wedge) before it is enqueued.
func (p *partition) ownerExecAsync() btree.OwnerExecAsync {
	return func(home btree.ContExec, fn func(tok *btree.Owner), done func(ok bool)) bool {
		m := &contMsg{contReply: contReply{home: home, k: done}, fn: fn}
		if p.eng.cfg.Tracer.SampleHop() {
			m.at = time.Now()
		}
		if det := p.eng.shipDet; det != nil {
			m.path = det.extendPath(p.worker, false)
		}
		return p.in.pushChecked(m)
	}
}

// asyncHookFor returns the async owner-exec hook for partition q, or nil
// in the blocking-ships configuration (no hook installed means the
// btree layer falls back to the parked-sender path).
func (e *Dora) asyncHookFor(q *partition) btree.OwnerExecAsync {
	if e.cfg.BlockingShips {
		return nil
	}
	return q.ownerExecAsync()
}

// actionHost implements xct.AsyncHost for one action execution: the
// bridge between an action body that wants to suspend on a foreign
// operation and the partition worker that must keep draining its inbox
// meanwhile.
type actionHost struct {
	p         *partition
	am        *actionMsg
	suspended bool
}

// Home implements xct.AsyncHost.
func (h *actionHost) Home() btree.ContExec { return h.p.homeExec }

// Suspend implements xct.AsyncHost: it detaches the action from the
// worker's thread. The engine ignores the body's return and the worker
// moves on; the returned resume reports the action's outcome to its RVP
// (exactly once — duplicate calls are swallowed, since a double report
// would corrupt the rendezvous countdown).
func (h *actionHost) Suspend() func(error) {
	h.suspended = true
	p, am := h.p, h.am
	p.SuspendedNow.Add(1)
	// Traced transactions time the suspension: Suspend → resume is the
	// foreign round trip (ship out, remote exec, kont back) as the
	// transaction experiences it.
	tt := am.run.txn.Trace
	var t0 time.Time
	if tt != nil {
		t0 = time.Now()
	}
	done := new(atomic.Bool)
	return func(err error) {
		if !done.CompareAndSwap(false, true) {
			return
		}
		if tt != nil {
			tt.Span(trace.StageSuspend, p.worker, t0, time.Since(t0))
		}
		p.SuspendedNow.Add(-1)
		p.eng.report(am.rvp, err)
	}
}

var _ xct.AsyncHost = (*actionHost)(nil)
