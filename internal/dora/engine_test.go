package dora

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dora/internal/catalog"
	"dora/internal/sm"
	"dora/internal/tuple"
	"dora/internal/xct"
)

// rig builds an SM with one "accounts" table (id, owner_nbr, balance)
// loaded with n rows, plus a secondary index on owner_nbr = id + 10000.
func rig(t *testing.T, n int64, parts int) (*sm.SM, *catalog.Table, *Dora) {
	t.Helper()
	s, err := sm.Open(sm.Options{Frames: 256})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := s.CreateTable(sm.TableSpec{
		Name: "accounts",
		Fields: []catalog.Field{
			{Name: "id", Type: tuple.TInt},
			{Name: "owner_nbr", Type: tuple.TInt},
			{Name: "balance", Type: tuple.TInt},
		},
		KeyFields: []string{"id"},
		Key:       func(r tuple.Record) int64 { return r[0].Int },
		Secondaries: []sm.IndexSpec{{
			Name:   "accounts_by_nbr",
			Fields: []string{"owner_nbr"},
			Key:    func(r tuple.Record) int64 { return r[1].Int },
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ses := s.Session(0)
	load := s.Begin()
	for i := int64(1); i <= n; i++ {
		if err := ses.Insert(load, tbl, tuple.Record{tuple.I(i), tuple.I(i + 10000), tuple.I(100)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(load); err != nil {
		t.Fatal(err)
	}
	e := New(s, Config{
		PartitionsPerTable: parts,
		Domains:            map[string][2]int64{"accounts": {1, n}},
	})
	t.Cleanup(func() { _ = e.Close() })
	return s, tbl, e
}

// readFlow builds a single-action flow reading account id.
func readFlow(tbl *catalog.Table, id int64, out *int64) *xct.Flow {
	return xct.NewFlow("read").AddPhase(&xct.Action{
		Table: "accounts", KeyField: "id", Key: id, Mode: xct.Read,
		Run: func(env *xct.Env) error {
			rec, err := env.Ses.Read(env.Txn, tbl, id)
			if err != nil {
				return err
			}
			*out = rec[2].Int
			return nil
		},
	})
}

// transferFlow moves amount between two accounts in one phase.
func transferFlow(tbl *catalog.Table, from, to, amount int64) *xct.Flow {
	w := func(id, delta int64) *xct.Action {
		return &xct.Action{
			Table: "accounts", KeyField: "id", Key: id, Mode: xct.Write,
			Run: func(env *xct.Env) error {
				return env.Ses.Mutate(env.Txn, tbl, id, func(r tuple.Record) tuple.Record {
					r[2] = tuple.I(r[2].Int + delta)
					return r
				})
			},
		}
	}
	return xct.NewFlow("transfer").AddPhase(w(from, -amount), w(to, amount))
}

func TestExecSingleAction(t *testing.T) {
	_, tbl, e := rig(t, 100, 4)
	var bal int64
	if err := e.Exec(0, readFlow(tbl, 42, &bal)); err != nil {
		t.Fatal(err)
	}
	if bal != 100 {
		t.Fatalf("balance = %d", bal)
	}
	if e.Committed.Load() != 1 {
		t.Fatalf("committed = %d", e.Committed.Load())
	}
}

func TestExecMultiPartitionPhase(t *testing.T) {
	s, tbl, e := rig(t, 100, 4)
	if err := e.Exec(0, transferFlow(tbl, 1, 100, 30)); err != nil {
		t.Fatal(err)
	}
	ses := s.Session(9)
	r1, _ := ses.Read(s.Begin(), tbl, 1)
	r2, _ := ses.Read(s.Begin(), tbl, 100)
	if r1[2].Int != 70 || r2[2].Int != 130 {
		t.Fatalf("balances: %d, %d", r1[2].Int, r2[2].Int)
	}
}

func TestExecMultiPhase(t *testing.T) {
	s, tbl, e := rig(t, 10, 2)
	var seen int64
	flow := xct.NewFlow("two-phase").
		AddPhase(&xct.Action{
			Table: "accounts", KeyField: "id", Key: 1, Mode: xct.Read,
			Run: func(env *xct.Env) error {
				rec, err := env.Ses.Read(env.Txn, tbl, 1)
				if err != nil {
					return err
				}
				seen = rec[2].Int
				return nil
			},
		}).
		AddPhase(&xct.Action{
			Table: "accounts", KeyField: "id", Key: 2, Mode: xct.Write,
			Run: func(env *xct.Env) error {
				// Phase 2 sees phase 1's output (data dependency via RVP).
				return env.Ses.Update(env.Txn, tbl, 2,
					tuple.Record{tuple.I(2), tuple.I(10002), tuple.I(seen * 2)})
			},
		})
	if err := e.Exec(0, flow); err != nil {
		t.Fatal(err)
	}
	rec, _ := s.Session(9).Read(s.Begin(), tbl, 2)
	if rec[2].Int != 200 {
		t.Fatalf("phase-2 write = %d, want 200", rec[2].Int)
	}
}

func TestAbortRollsBackAllPartitions(t *testing.T) {
	s, tbl, e := rig(t, 100, 4)
	boom := errors.New("boom")
	flow := xct.NewFlow("failing").AddPhase(
		&xct.Action{
			Table: "accounts", KeyField: "id", Key: 5, Mode: xct.Write,
			Run: func(env *xct.Env) error {
				return env.Ses.Update(env.Txn, tbl, 5, tuple.Record{tuple.I(5), tuple.I(10005), tuple.I(9999)})
			},
		},
		&xct.Action{
			Table: "accounts", KeyField: "id", Key: 95, Mode: xct.Write,
			Run: func(env *xct.Env) error {
				return boom
			},
		},
	)
	err := e.Exec(0, flow)
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	rec, _ := s.Session(9).Read(s.Begin(), tbl, 5)
	if rec[2].Int != 100 {
		t.Fatalf("write of aborted txn persisted: %d", rec[2].Int)
	}
	if e.Aborted.Load() != 1 {
		t.Fatalf("aborted = %d", e.Aborted.Load())
	}
	// Locks must be released: the same keys are writable again.
	if err := e.Exec(0, transferFlow(tbl, 5, 95, 10)); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentTransfersConserveTotal(t *testing.T) {
	s, tbl, e := rig(t, 50, 4)
	const clients = 8
	const perClient = 200
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				from := int64((c*perClient+i)%50) + 1
				to := int64((c*perClient+i*7)%50) + 1
				if from == to {
					continue
				}
				if err := e.Exec(c, transferFlow(tbl, from, to, 1)); err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	var total int64
	ses := s.Session(9)
	for i := int64(1); i <= 50; i++ {
		rec, err := ses.Read(s.Begin(), tbl, i)
		if err != nil {
			t.Fatal(err)
		}
		total += rec[2].Int
	}
	if total != 50*100 {
		t.Fatalf("total = %d, want %d (money not conserved)", total, 50*100)
	}
}

func TestUnalignedAccessViaResolver(t *testing.T) {
	s, tbl, e := rig(t, 100, 4)
	resolver := func(env *xct.Env, field string) (int64, error) {
		rec, err := env.Ses.ReadByIndex(env.Txn, tbl, "accounts_by_nbr", 10007)
		if err != nil {
			return 0, err
		}
		i := tbl.FieldIndex(field)
		if i < 0 {
			return 0, fmt.Errorf("no field %s", field)
		}
		return rec[i].Int, nil
	}
	var bal int64
	flow := xct.NewFlow("by-nbr").AddPhase(&xct.Action{
		Table: "accounts", KeyField: "owner_nbr", Key: 10007, Mode: xct.Read,
		Resolve: resolver,
		Run: func(env *xct.Env) error {
			rec, err := env.Ses.ReadByIndex(env.Txn, tbl, "accounts_by_nbr", 10007)
			if err != nil {
				return err
			}
			bal = rec[2].Int
			return nil
		},
	})
	if err := e.Exec(0, flow); err != nil {
		t.Fatal(err)
	}
	if bal != 100 {
		t.Fatalf("balance = %d", bal)
	}
	_, unaligned := e.AlignmentStats(false)
	if unaligned[tbl.ID]["owner_nbr"] != 1 {
		t.Fatalf("unaligned stats: %v", unaligned)
	}
	_ = s
}

func TestSplitPartitionUnderLoad(t *testing.T) {
	s, tbl, e := rig(t, 100, 2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var execErr error
	var mu sync.Mutex
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				from := int64((c*31+i)%100) + 1
				to := int64((c*17+i*3)%100) + 1
				i++
				if from == to {
					continue
				}
				if err := e.Exec(c, transferFlow(tbl, from, to, 1)); err != nil {
					mu.Lock()
					execErr = err
					mu.Unlock()
					return
				}
			}
		}(c)
	}
	// Split and merge repeatedly while the load runs.
	time.Sleep(20 * time.Millisecond)
	stats := e.PartitionStats()
	first := stats[0].Worker
	nw, err := e.SplitPartition("accounts", first, 26)
	if err != nil {
		// The first worker may own the upper half; try the other.
		nw, err = e.SplitPartition("accounts", stats[1].Worker, 76)
	}
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	time.Sleep(30 * time.Millisecond)
	if e.NumPartitions("accounts") != 3 {
		t.Fatalf("partitions = %d, want 3", e.NumPartitions("accounts"))
	}
	// Merge the new partition back into an existing one.
	var into int
	for _, st := range e.PartitionStats() {
		if st.Worker != nw {
			into = st.Worker
			break
		}
	}
	if err := e.MergePartition("accounts", nw, into); err != nil {
		t.Fatalf("merge: %v", err)
	}
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if execErr != nil {
		t.Fatalf("exec during rebalance: %v", execErr)
	}
	if e.NumPartitions("accounts") != 2 {
		t.Fatalf("partitions = %d, want 2", e.NumPartitions("accounts"))
	}
	// Money conserved through it all.
	var total int64
	ses := s.Session(9)
	for i := int64(1); i <= 100; i++ {
		rec, err := ses.Read(s.Begin(), tbl, i)
		if err != nil {
			t.Fatal(err)
		}
		total += rec[2].Int
	}
	if total != 100*100 {
		t.Fatalf("total = %d after rebalance", total)
	}
}

func TestRepartitionOnNewField(t *testing.T) {
	s, tbl, e := rig(t, 100, 4)
	// Before: partitioned by id; accesses by owner_nbr are unaligned.
	if pf := tbl.PartitionField(); pf != "id" {
		t.Fatalf("initial partition field %q", pf)
	}
	if err := e.Repartition("accounts", "owner_nbr", 10001, 10100); err != nil {
		t.Fatal(err)
	}
	if pf := tbl.PartitionField(); pf != "owner_nbr" {
		t.Fatalf("partition field after repartition: %q", pf)
	}
	// Aligned access by owner_nbr now routes directly.
	var bal int64
	flow := xct.NewFlow("by-nbr").AddPhase(&xct.Action{
		Table: "accounts", KeyField: "owner_nbr", Key: 10007, Mode: xct.Read,
		Run: func(env *xct.Env) error {
			rec, err := env.Ses.ReadByIndex(env.Txn, tbl, "accounts_by_nbr", 10007)
			if err != nil {
				return err
			}
			bal = rec[2].Int
			return nil
		},
	})
	if err := e.Exec(0, flow); err != nil {
		t.Fatal(err)
	}
	if bal != 100 {
		t.Fatalf("balance = %d", bal)
	}
	a, u := e.AlignmentStats(false)
	if len(u[tbl.ID]) != 0 || a[tbl.ID] != 1 {
		t.Fatalf("alignment after repartition: aligned=%v unaligned=%v", a, u)
	}
	// And transfers by id are now the unaligned ones — they need a
	// resolver, so keep using owner_nbr-keyed writes here.
	_ = s
}

func TestLockConflictSerializes(t *testing.T) {
	// Two writers to the same key: the local lock table must serialize
	// them; final balance reflects both.
	_, tbl, e := rig(t, 10, 2)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			flow := xct.NewFlow("inc").AddPhase(&xct.Action{
				Table: "accounts", KeyField: "id", Key: 7, Mode: xct.Write,
				Run: func(env *xct.Env) error {
					return env.Ses.Mutate(env.Txn, tbl, 7, func(r tuple.Record) tuple.Record {
						r[2] = tuple.I(r[2].Int + 1)
						return r
					})
				},
			})
			if err := e.Exec(i, flow); err != nil {
				t.Errorf("inc: %v", err)
			}
		}(i)
	}
	wg.Wait()
	var bal int64
	if err := e.Exec(0, readFlow(tbl, 7, &bal)); err != nil {
		t.Fatal(err)
	}
	if bal != 120 {
		t.Fatalf("balance = %d, want 120 (lost updates)", bal)
	}
}

func TestPartitionStatsShape(t *testing.T) {
	_, _, e := rig(t, 100, 3)
	stats := e.PartitionStats()
	if len(stats) != 3 {
		t.Fatalf("stats for %d partitions", len(stats))
	}
	var width int64
	for _, st := range stats {
		if st.Table != "accounts" {
			t.Fatalf("table %q", st.Table)
		}
		width += st.Width
	}
	if width != 100 {
		t.Fatalf("total width %d, want 100", width)
	}
}
