package dora

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
	"sync"

	"dora/internal/metrics"
)

// Ship-graph discipline checking (debug mode, Config.DebugShipCheck).
//
// A BLOCKING ship executes on the owner's thread and PARKS the sender,
// so a chain of blocking ships must stay acyclic: an action body on
// worker A whose shipped work on worker B ships back to A deadlocks — A
// waits in its inbox hand-off for B, B waits for A to drain. A
// CONTINUATION ship parks nobody: the sender keeps draining its inbox
// while the operation is in flight, so a chain that revisits it merely
// round-trips messages.
//
// The detector therefore tracks, per worker goroutine, the chain of
// workers the currently-executing shipped operation has traveled AND
// whether each of them is parked (its outbound hop was blocking) —
// continuation ships carry the chain in their messages exactly like
// blocking ones. A ship targeting a worker that is parked on this very
// chain fails fast with a diagnostic panic BEFORE the message is
// enqueued (it would deadlock: the target cannot drain); the resulting
// shipCycleError unwinds the chain hop by hop (each blocking hop's
// sender re-panics after its hand-off completes), so it surfaces at the
// origin of the cyclic operation. A ship targeting a worker that is in
// the chain but NOT parked — possible only via continuation hops — is
// diagnosed (counted, recorded for the monitor) and allowed to proceed:
// cycles cannot wedge a non-blocking sender.
//
// Chains cover the ships of one operation in flight; a suspended
// action's RESUME starts a fresh chain. That is sound, not a gap: by
// the time a continuation runs, every hop of the completed operation
// has delivered and parks nobody, so there is nothing left for a later
// ship to deadlock against (multi-hop revisits across a resume are
// simply new acyclic chains).

// shipHop is one traversed worker in a ship chain. parked records
// whether the hop OUT of this worker was blocking — i.e. whether the
// worker is sitting in a channel receive until the chain's deeper hops
// complete (and therefore cannot drain its inbox).
type shipHop struct {
	worker int
	parked bool
}

// shipCycleError is the diagnostic for a cyclic ship.
type shipCycleError struct {
	path   []shipHop // workers traversed, origin first, sender last
	target int       // the worker the offending ship addressed
}

func (e *shipCycleError) Error() string {
	var b bytes.Buffer
	b.WriteString("dora: cyclic owner-thread ship: ")
	for _, h := range e.path {
		fmt.Fprintf(&b, "worker %d -> ", h.worker)
	}
	fmt.Fprintf(&b, "worker %d (already in the chain); ", e.target)
	b.WriteString("a blocking ship cycle deadlocks — " +
		"keep the ship graph acyclic, route the access through the owning partition, " +
		"or use continuation ships (which cannot wedge)")
	return b.String()
}

// shipFrame is one worker goroutine's detector state. path is written
// only by that goroutine (while it executes a shipped message) and read
// only by it (when it ships onward), so it needs no lock; the detector
// map that finds the frame does.
type shipFrame struct {
	worker int
	path   []shipHop
}

type shipDetector struct {
	mu     sync.RWMutex
	frames map[int64]*shipFrame

	// Cycles counts diagnosed (non-fatal) cycles; lastCycle keeps the
	// most recent diagnostic for the monitor.
	Cycles    metrics.Counter
	lastMu    sync.Mutex
	lastCycle string
}

func newShipDetector() *shipDetector {
	return &shipDetector{frames: make(map[int64]*shipFrame)}
}

// diagnose records a non-fatal cycle detection.
func (d *shipDetector) diagnose(ce *shipCycleError) {
	d.Cycles.Inc()
	d.lastMu.Lock()
	d.lastCycle = ce.Error()
	d.lastMu.Unlock()
}

// LastCycle returns the most recent non-fatal cycle diagnostic ("" when
// none was ever recorded).
func (d *shipDetector) LastCycle() string {
	d.lastMu.Lock()
	defer d.lastMu.Unlock()
	return d.lastCycle
}

// register installs a frame for the calling worker goroutine.
func (d *shipDetector) register(worker int) *shipFrame {
	fr := &shipFrame{worker: worker}
	id := goid()
	d.mu.Lock()
	d.frames[id] = fr
	d.mu.Unlock()
	return fr
}

// unregister removes the calling goroutine's frame.
func (d *shipDetector) unregister() {
	id := goid()
	d.mu.Lock()
	delete(d.frames, id)
	d.mu.Unlock()
}

// current returns the calling goroutine's frame, or nil when the caller
// is not a partition worker (clients, the commit service, maintenance).
func (d *shipDetector) current() *shipFrame {
	id := goid()
	d.mu.RLock()
	fr := d.frames[id]
	d.mu.RUnlock()
	return fr
}

// extendPath computes the ship path for a message the calling goroutine
// is about to send to target: the chain it is executing on behalf of,
// plus itself with the parked flag of the hop it is about to make
// (blocking = the caller will park until the ship completes). When
// target is already in that chain AND parked there, it panics with a
// shipCycleError — BEFORE the message is enqueued, so nothing
// deadlocks. A cycle through only non-parked (continuation) hops is
// diagnosed and allowed.
func (d *shipDetector) extendPath(target int, blocking bool) []shipHop {
	fr := d.current()
	if fr == nil {
		return nil // fresh chain: first hop, nothing to cycle with
	}
	base := make([]shipHop, 0, len(fr.path)+1)
	base = append(base, fr.path...)
	base = append(base, shipHop{worker: fr.worker, parked: blocking})
	cyclic := false
	for _, h := range base {
		if h.worker == target {
			cyclic = true
			if h.parked {
				panic(&shipCycleError{path: base, target: target})
			}
		}
	}
	if cyclic {
		d.diagnose(&shipCycleError{path: base, target: target})
	}
	return base
}

// runShipped executes a shipped message body under the detector: the
// worker's frame carries the message's path for the duration, and a
// shipCycleError panicking out of the body (a deeper hop detected the
// cycle) is captured for the sender to re-raise — hop-by-hop unwinding
// that lands the diagnostic at the chain's origin. Other panics pass
// through untouched.
func (p *partition) runShipped(path []shipHop, fn func()) (cyc *shipCycleError) {
	det := p.eng.shipDet
	if det == nil || p.frame == nil {
		fn()
		return nil
	}
	p.frame.path = path
	defer func() {
		p.frame.path = nil
		if r := recover(); r != nil {
			ce, ok := r.(*shipCycleError)
			if !ok {
				panic(r)
			}
			cyc = ce
		}
	}()
	fn()
	return nil
}

// goid parses the current goroutine id from the stack header ("goroutine
// 123 [running]: ..."). Debug-mode only: the detector is the sole user.
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	s = bytes.TrimPrefix(s, []byte("goroutine "))
	if i := bytes.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	id, _ := strconv.ParseInt(string(s), 10, 64)
	return id
}
