package dora

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
	"sync"
)

// Ship-graph discipline checking (debug mode, Config.DebugShipCheck).
//
// Cross-partition operations execute on the owner's thread and BLOCK the
// sender, so the graph of in-flight ships must stay acyclic: an action
// body on worker A whose shipped work on worker B ships back to A
// deadlocks — A waits in its inbox hand-off for B, B waits for A to
// drain. Engine-shipped workloads keep this acyclic by construction
// (TPC-C ships orders→order_line only), but an arbitrary action body can
// violate it. The detector tracks, per worker goroutine, the chain of
// workers the currently-executing shipped operation has traveled; a ship
// whose target already appears in the chain fails fast with a diagnostic
// instead of deadlocking. The resulting shipCycleError unwinds the chain
// hop by hop (each hop's sender re-panics after its hand-off completes),
// so it surfaces at the origin of the cyclic operation.

// shipCycleError is the fail-fast diagnostic for a cyclic ship.
type shipCycleError struct {
	path   []int // workers traversed, origin first, sender last
	target int   // the worker the offending ship addressed
}

func (e *shipCycleError) Error() string {
	var b bytes.Buffer
	b.WriteString("dora: cyclic owner-thread ship: ")
	for _, w := range e.path {
		fmt.Fprintf(&b, "worker %d -> ", w)
	}
	fmt.Fprintf(&b, "worker %d (already in the chain); ", e.target)
	b.WriteString("the action body creates a ship cycle that would deadlock — " +
		"keep the ship graph acyclic or route the access through the owning partition")
	return b.String()
}

// shipFrame is one worker goroutine's detector state. path is written
// only by that goroutine (while it executes a shipped message) and read
// only by it (when it ships onward), so it needs no lock; the detector
// map that finds the frame does.
type shipFrame struct {
	worker int
	path   []int
}

type shipDetector struct {
	mu     sync.RWMutex
	frames map[int64]*shipFrame
}

func newShipDetector() *shipDetector {
	return &shipDetector{frames: make(map[int64]*shipFrame)}
}

// register installs a frame for the calling worker goroutine.
func (d *shipDetector) register(worker int) *shipFrame {
	fr := &shipFrame{worker: worker}
	id := goid()
	d.mu.Lock()
	d.frames[id] = fr
	d.mu.Unlock()
	return fr
}

// unregister removes the calling goroutine's frame.
func (d *shipDetector) unregister() {
	id := goid()
	d.mu.Lock()
	delete(d.frames, id)
	d.mu.Unlock()
}

// current returns the calling goroutine's frame, or nil when the caller
// is not a partition worker (clients, the commit service, maintenance).
func (d *shipDetector) current() *shipFrame {
	id := goid()
	d.mu.RLock()
	fr := d.frames[id]
	d.mu.RUnlock()
	return fr
}

// extendPath computes the ship path for a message the calling goroutine
// is about to send to target: the chain it is executing on behalf of,
// plus itself. It panics with a shipCycleError when target is already in
// that chain — BEFORE the message is enqueued, so nothing deadlocks.
func (d *shipDetector) extendPath(target int) []int {
	fr := d.current()
	if fr == nil {
		return nil // fresh chain: first hop, nothing to cycle with
	}
	base := make([]int, 0, len(fr.path)+1)
	base = append(base, fr.path...)
	base = append(base, fr.worker)
	for _, w := range base {
		if w == target {
			panic(&shipCycleError{path: base, target: target})
		}
	}
	return base
}

// runShipped executes a shipped message body under the detector: the
// worker's frame carries the message's path for the duration, and a
// shipCycleError panicking out of the body (a deeper hop detected the
// cycle) is captured for the sender to re-raise — hop-by-hop unwinding
// that lands the diagnostic at the chain's origin. Other panics pass
// through untouched.
func (p *partition) runShipped(path []int, fn func()) (cyc *shipCycleError) {
	det := p.eng.shipDet
	if det == nil || p.frame == nil {
		fn()
		return nil
	}
	p.frame.path = path
	defer func() {
		p.frame.path = nil
		if r := recover(); r != nil {
			ce, ok := r.(*shipCycleError)
			if !ok {
				panic(r)
			}
			cyc = ce
		}
	}()
	fn()
	return nil
}

// goid parses the current goroutine id from the stack header ("goroutine
// 123 [running]: ..."). Debug-mode only: the detector is the sole user.
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	s = bytes.TrimPrefix(s, []byte("goroutine "))
	if i := bytes.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	id, _ := strconv.ParseInt(string(s), 10, 64)
	return id
}
