package dora

import (
	"sort"

	"dora/internal/xct"
)

// hierLockTable is the multigranularity local lock table: a three-level
// hierarchy, partition root → granule (a 2^granuleBits-wide interval of
// routing values) → key, with the standard IS/IX/S/SIX/X modes. It is
// still partition-private and latch-free on the owner thread — plain
// maps and slices, no mutexes: the owning worker is the only toucher,
// exactly the paper's thread-private invariant. What the hierarchy buys:
//
//   - Range scans take one S lock per spanned granule (or a single
//     partition-level S when the span is wide) instead of a lock per
//     key — O(keys) acquisitions become O(1).
//   - Whole-partition operations (maintenance ships, CompactOwned,
//     evacuation gating) answer "is anything in this range locked?"
//     from the granule summaries instead of sweeping per-key entries.
//   - Per-transaction lock escalation: when a transaction accumulates
//     escalateAt key locks under one granule, they fold into a single
//     coarse S/X hold there, absorbing zipfian hot-key storms.
//
// Protocol notes:
//
//   - A point acquire takes IS/IX intents at the root and granule, then
//     S/X at the key. The per-transaction granule cache (txnLocks.last)
//     makes the steady-state re-acquire under a coarse hold ~1 map
//     probe.
//   - Granule-level range locks over-cover: the edge granules of an
//     interval are locked whole. Conservative, never incorrect — an
//     extra writer may wait that strictly need not.
//   - Grants never overtake a conflicting parked waiter at the same
//     node (FIFO fairness per node, like the flat table). A promoted
//     waiter that is still blocked re-parks at whichever level blocks
//     it now, so cross-node ordering is approximate.
//   - Blocked requests keep their partial grants (intents, range
//     prefixes); the transaction's release drops them. That mirrors the
//     flat table's held-prefix behaviour for ranges and guarantees that
//     every blocker's release re-triggers promotion at the nodes it
//     held.
type hierLockTable struct {
	root     hnode
	granules map[int64]*granule
	byTxn    map[uint64]*txnLocks
	waiting  int
	// escalateAt is the per-(txn, granule) key-lock count that triggers
	// escalation; <= 0 disables.
	escalateAt int
	// promotingFrom is the node whose popped queue head is being
	// re-granted: the waiters still queued there are all BEHIND it, and
	// the no-overtake rule only defers to waiters ahead — without this
	// exemption two conflicting waiters would veto each other forever.
	promotingFrom *hnode
	// escSuppress is the adaptive-escalation backoff: each conflict-
	// triggered de-escalation adds escSuppressPenalty (escalation clearly
	// is not paying off), and every suppressed escalation attempt decays
	// it by one. Under a sustained hot-key storm the table converges to
	// fine-grained locking; conflict-free workloads keep escalating.
	escSuppress int
	// keyNodes counts live key nodes across all granules (heldKeys).
	keyNodes int
	stats    lockStats
}

// granuleBits sizes a granule at 2^granuleBits routing values.
const granuleBits = 8

// rootSpanGranules is the span, in granules, past which a ranged action
// takes one partition-level lock instead of per-granule locks.
const rootSpanGranules = 64

// defaultEscalateAt is the escalation threshold when Config.EscalateAt
// is zero.
const defaultEscalateAt = 16

// escSuppressPenalty/escSuppressMax shape the adaptive-escalation
// backoff: one conflict-forced de-escalation suppresses the next
// escSuppressPenalty escalation attempts, capped so a burst of conflicts
// cannot disable escalation for long after the conflict pattern ends.
const (
	escSuppressPenalty = 64
	escSuppressMax     = 4 * escSuppressPenalty
)

// hnode is one hierarchy node: granted holds plus a FIFO waiter queue.
type hnode struct {
	holders []llHold
	waiters []*actionMsg
}

// granule is one key-range node plus the key nodes under it.
type granule struct {
	node hnode
	keys map[int64]*hnode
	// keyNodes points at the table's key-node counter; key()/dropKey
	// maintain it so the heldKeys gauge (mirrored after every batch)
	// stays O(1) instead of summing per-granule map sizes.
	keyNodes *int
}

// txnGran tracks one transaction's state under one granule.
type txnGran struct {
	// mode is the transaction's hold at the granule node (LockNone when
	// it only holds key locks... never: key locks imply an intent here).
	mode xct.LockMode
	// keys lists the keys the transaction locked under the granule. With
	// key-level holds it is the release list; after escalation it keeps
	// accumulating (including keys granted under the coarse cover) as
	// the materialization list for conflict-triggered de-escalation.
	keys []int64
	// escalated marks that keys were folded into a coarse hold.
	escalated bool
	// intent is the lub of the intents the transaction needed here —
	// what the granule hold reverts to on de-escalation.
	intent xct.LockMode
	// escMode is the coarse mode escalation took (S or X): keys
	// materialize at this (conservative) mode on de-escalation.
	escMode xct.LockMode
	// pinned marks coverage a ranged action relied on; de-escalation
	// must not strip it (the scan took no per-key locks).
	pinned bool
	// noEscalate is set when a conflict de-escalated this granule, so
	// the key-count trigger does not thrash escalate/de-escalate.
	noEscalate bool
}

// txnLocks is the per-transaction index over the hierarchy: O(held)
// release, and the fast-path cache for repeat acquires.
type txnLocks struct {
	rootMode xct.LockMode
	// first inlines the first granule the transaction touches — most
	// transactions never touch a second, and the inline slot spares the
	// short-transaction hot path both the grans map and the txnGran
	// allocation. grans stays nil until a second granule appears.
	firstID  int64
	hasFirst bool
	first    txnGran
	grans    map[int64]*txnGran
	// lastID/last cache the most recently touched granule, so the hot
	// path of a transaction working inside one granule is a single
	// byTxn probe plus a coverage check.
	lastID int64
	last   *txnGran
}

// hierMoved is hierarchical lock state in flight between partitions.
type hierMoved struct {
	root     llEntry
	granules map[int64]*hierGranMoved
}

// hierGranMoved is one migrated granule's state.
type hierGranMoved struct {
	node llEntry
	keys map[int64]*llEntry
}

func newHierLockTable(escalateAt int) *hierLockTable {
	if escalateAt == 0 {
		escalateAt = defaultEscalateAt
	}
	return &hierLockTable{
		granules:   make(map[int64]*granule),
		byTxn:      make(map[uint64]*txnLocks),
		escalateAt: escalateAt,
	}
}

func granuleOf(key int64) int64 { return key >> granuleBits }

// rangeSpansRoot reports whether a ranged action is wide enough to take
// a partition-level lock instead of per-granule locks.
func rangeSpansRoot(a *xct.Action) bool {
	return granuleOf(a.RangeHi)-granuleOf(a.RangeLo)+1 > rootSpanGranules
}

func (n *hnode) holdOf(txn uint64) int {
	for i, h := range n.holders {
		if h.txn == txn {
			return i
		}
	}
	return -1
}

func (n *hnode) removeHold(txn uint64) {
	for i := 0; i < len(n.holders); {
		if n.holders[i].txn == txn {
			n.holders = append(n.holders[:i], n.holders[i+1:]...)
		} else {
			i++
		}
	}
}

// mergeHold folds an adopted hold in: lub with an existing hold of the
// same transaction (adoption may duplicate coarse holds), else append.
func (n *hnode) mergeHold(h llHold) {
	if i := n.holdOf(h.txn); i >= 0 {
		n.holders[i].mode = xct.LockLub(n.holders[i].mode, h.mode)
		return
	}
	n.holders = append(n.holders, h)
}

func (n *hnode) empty() bool { return len(n.holders) == 0 && len(n.waiters) == 0 }

// waiterWant is the mode a parked waiter needs at its park node: the
// full lock at the level its request targets, the intent above it.
func waiterWant(w *actionMsg) xct.LockMode {
	if w.act.Ranged {
		switch w.wnLevel {
		case wnGranule:
			return w.act.Mode.LockFor()
		case wnRoot:
			if rangeSpansRoot(w.act) {
				return w.act.Mode.LockFor()
			}
			return w.act.Mode.IntentFor()
		}
		return w.act.Mode.LockFor()
	}
	if w.wnLevel == wnKey {
		return w.act.Mode.LockFor()
	}
	return w.act.Mode.IntentFor()
}

// allows reports whether (txn, want) can be granted at n: compatible
// with every other transaction's hold, and not overtaking any parked
// waiter it conflicts with (FIFO per node). self is skipped so a
// promotion re-attempt does not block on its own queue entry, and the
// waiter check is skipped entirely at the node the requester is being
// promoted FROM — everyone still queued there is behind it.
func (lt *hierLockTable) allows(n *hnode, txn uint64, want xct.LockMode, self *actionMsg) bool {
	for _, h := range n.holders {
		if h.txn != txn && !xct.LockCompatible(h.mode, want) {
			return false
		}
	}
	if n == lt.promotingFrom {
		return true
	}
	for _, w := range n.waiters {
		if w == self || w.run.txn.ID == txn {
			continue
		}
		if !xct.LockCompatible(waiterWant(w), want) {
			return false
		}
	}
	return true
}

// allowsHolders is allows without the waiter check — escalation treats
// the queue like a same-transaction upgrade does.
func (n *hnode) allowsHolders(txn uint64, want xct.LockMode) bool {
	for _, h := range n.holders {
		if h.txn != txn && !xct.LockCompatible(h.mode, want) {
			return false
		}
	}
	return true
}

// ensureHold grants (txn, want) at n, lubbing an existing hold of the
// same transaction. isNew reports a hold appearing where none was.
func (lt *hierLockTable) ensureHold(n *hnode, txn uint64, want xct.LockMode, self *actionMsg) (granted, isNew bool) {
	lt.stats.acquisitions++
	if i := n.holdOf(txn); i >= 0 {
		held := n.holders[i].mode
		if xct.LockCovers(held, want) {
			return true, false
		}
		up := xct.LockLub(held, want)
		if !lt.allows(n, txn, up, self) {
			return false, false
		}
		n.holders[i].mode = up
		return true, false
	}
	if !lt.allows(n, txn, want, self) {
		return false, false
	}
	n.holders = append(n.holders, llHold{txn: txn, mode: want})
	return true, true
}

func (lt *hierLockTable) granule(gid int64) *granule {
	g := lt.granules[gid]
	if g == nil {
		g = &granule{keys: make(map[int64]*hnode), keyNodes: &lt.keyNodes}
		lt.granules[gid] = g
	}
	return g
}

func (g *granule) key(k int64) *hnode {
	kn := g.keys[k]
	if kn == nil {
		kn = &hnode{}
		g.keys[k] = kn
		*g.keyNodes++
	}
	return kn
}

func (g *granule) dropKey(k int64) {
	delete(g.keys, k)
	*g.keyNodes--
}

func (lt *hierLockTable) txnOf(txn uint64) *txnLocks {
	th := lt.byTxn[txn]
	if th == nil {
		th = &txnLocks{}
		lt.byTxn[txn] = th
	}
	return th
}

func (th *txnLocks) gran(gid int64) *txnGran {
	if th.last != nil && th.lastID == gid {
		return th.last
	}
	if !th.hasFirst {
		th.hasFirst, th.firstID = true, gid
		th.lastID, th.last = gid, &th.first
		return th.last
	}
	if th.firstID == gid {
		th.lastID, th.last = gid, &th.first
		return th.last
	}
	tg := th.grans[gid]
	if tg == nil {
		tg = &txnGran{}
		if th.grans == nil {
			th.grans = make(map[int64]*txnGran)
		}
		th.grans[gid] = tg
	}
	th.lastID, th.last = gid, tg
	return tg
}

// granIf is gran without the create: nil when the transaction holds
// nothing under gid.
func (th *txnLocks) granIf(gid int64) *txnGran {
	if th.hasFirst && th.firstID == gid {
		return &th.first
	}
	return th.grans[gid]
}

// eachGran visits every granule the transaction has state under.
func (th *txnLocks) eachGran(f func(gid int64, tg *txnGran)) {
	if th.hasFirst {
		f(th.firstID, &th.first)
	}
	for gid, tg := range th.grans {
		f(gid, tg)
	}
}

// acquire implements lockTable.
func (lt *hierLockTable) acquire(am *actionMsg) bool {
	if am.act.Ranged {
		return lt.acquireRange(am)
	}
	txn := am.run.txn.ID
	key := am.routeKey
	gid := granuleOf(key)
	th := lt.txnOf(txn)
	want := am.act.Mode.LockFor()
	wantI := am.act.Mode.IntentFor()

	// Fast path: a coarse hold already covers this access — either the
	// cached granule of the transaction (escalated, or range-locked
	// earlier) or a partition-level lock. One probe, no node walks.
	if th.last != nil && th.lastID == gid && xct.LockCovers(th.last.mode, want) {
		lt.stats.acquisitions++
		th.last.coveredKey(key)
		return true
	}
	if xct.LockCovers(th.rootMode, want) {
		lt.stats.acquisitions++
		return true
	}

	// Root intent.
	if !xct.LockCovers(th.rootMode, wantI) {
		granted, _ := lt.ensureHold(&lt.root, txn, wantI, am)
		if !granted {
			am.wnLevel, am.wnID = wnRoot, 0
			return false
		}
		th.rootMode = xct.LockLub(th.rootMode, wantI)
	}
	// Granule intent.
	g := lt.granule(gid)
	tg := th.gran(gid)
	if xct.LockCovers(tg.mode, want) {
		lt.stats.acquisitions++
		tg.coveredKey(key)
		return true
	}
	if !xct.LockCovers(tg.mode, wantI) {
		granted, _ := lt.ensureHold(&g.node, txn, wantI, am)
		if !granted && lt.yieldEscalated(gid, g, txn, wantI) {
			granted, _ = lt.ensureHold(&g.node, txn, wantI, am)
		}
		if !granted {
			am.wnLevel, am.wnID = wnGranule, gid
			return false
		}
		tg.mode = xct.LockLub(tg.mode, wantI)
	}
	tg.intent = xct.LockLub(tg.intent, wantI)
	// Key lock.
	kn := g.key(key)
	granted, isNew := lt.ensureHold(kn, txn, want, am)
	if !granted {
		am.wnLevel, am.wnID = wnKey, key
		return false
	}
	if isNew {
		tg.keys = append(tg.keys, key)
	}
	// Escalation: enough key locks under one granule fold into a single
	// coarse hold there.
	if lt.escalateAt > 0 && !tg.escalated && len(tg.keys) >= lt.escalateAt {
		lt.tryEscalate(txn, g, tg)
	}
	return true
}

// tryEscalate folds a transaction's key locks under g into one coarse
// granule hold: X if any key hold is exclusive, S otherwise (lubbed with
// the intents already held, so S over IX becomes SIX). Like an upgrade
// it only defers to other HOLDERS — parked waiters do not veto it —
// and failure just means the keys stay fine-grained.
func (lt *hierLockTable) tryEscalate(txn uint64, g *granule, tg *txnGran) {
	if tg.noEscalate {
		return
	}
	if lt.escSuppress > 0 {
		lt.escSuppress--
		tg.noEscalate = true // one backoff probe per (txn, granule)
		return
	}
	target := xct.LockS
	for _, k := range tg.keys {
		kn := g.keys[k]
		if kn == nil {
			continue
		}
		if i := kn.holdOf(txn); i >= 0 && kn.holders[i].mode == xct.LockX {
			target = xct.LockX
			break
		}
	}
	up := xct.LockLub(tg.mode, target)
	if !g.node.allowsHolders(txn, up) {
		return
	}
	if i := g.node.holdOf(txn); i >= 0 {
		g.node.holders[i].mode = up
	} else {
		g.node.holders = append(g.node.holders, llHold{txn: txn, mode: up})
	}
	tg.escMode = target
	tg.mode = up
	tg.escalated = true
	lt.stats.escalations++
	// The coarse hold covers everything below: drop the key-level holds.
	// Nodes keeping other holders or waiters stay; release promotes the
	// waiters under this granule when the coarse hold goes. tg.keys is
	// KEPT (and keeps accumulating) as the materialization list for
	// conflict-triggered de-escalation.
	for _, k := range tg.keys {
		kn := g.keys[k]
		if kn == nil {
			continue
		}
		kn.removeHold(txn)
		if kn.empty() {
			g.dropKey(k)
		}
	}
}

// coveredKey records a key granted under an escalated coarse hold so a
// later de-escalation can materialize it (no-op otherwise — pre-
// escalation key holds are recorded at grant, range covers never yield).
func (tg *txnGran) coveredKey(key int64) {
	if !tg.escalated {
		return
	}
	if n := len(tg.keys); n > 0 && tg.keys[n-1] == key {
		return
	}
	tg.keys = append(tg.keys, key)
}

// yieldEscalated handles a request blocked at a granule by another
// transaction's ESCALATED hold. Escalation is an optimization, so a real
// conflict reverts the holder to its exact key locks instead of leaving
// every key in the granule falsely unavailable to the requester. Reports
// whether any hold yielded; the caller then retries the grant once.
// Range-pinned covers never yield — a scan relied on them and took no
// per-key locks.
func (lt *hierLockTable) yieldEscalated(gid int64, g *granule, txn uint64, want xct.LockMode) bool {
	yielded := false
	for _, h := range g.node.holders {
		if h.txn == txn || xct.LockCompatible(h.mode, want) {
			continue
		}
		oth := lt.byTxn[h.txn]
		if oth == nil {
			continue
		}
		tg := oth.granIf(gid)
		if tg == nil || !tg.escalated || tg.pinned {
			continue
		}
		lt.deescalate(g, h.txn, tg)
		yielded = true
	}
	return yielded
}

// deescalate reverts an escalated hold to key granularity: every key in
// the materialization list comes back as a key-level hold at the
// escalated mode (conservative — a read under an X escalation returns as
// X — but safe: while the cover stood, no other transaction could hold
// an incompatible lock on any key below it, so materializing cannot
// conflict), and the granule hold drops to the accumulated intent. The
// granule is marked noEscalate so the key-count trigger does not thrash.
func (lt *hierLockTable) deescalate(g *granule, txn uint64, tg *txnGran) {
	seen := make(map[int64]struct{}, len(tg.keys))
	kept := tg.keys[:0]
	for _, k := range tg.keys {
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		kept = append(kept, k)
		g.key(k).mergeHold(llHold{txn: txn, mode: tg.escMode})
	}
	tg.keys = kept
	if i := g.node.holdOf(txn); i >= 0 {
		g.node.holders[i].mode = tg.intent
	}
	tg.mode = tg.intent
	tg.escalated = false
	tg.noEscalate = true
	if lt.escSuppress += escSuppressPenalty; lt.escSuppress > escSuppressMax {
		lt.escSuppress = escSuppressMax
	}
	lt.stats.deescalations++
}

// acquireRange locks a ranged action: S/X per spanned granule, or one
// partition-level S/X when the span is wide. The cursor am.rangeNext
// (granule ids here) resumes a partially granted range after promotion.
// The interval is locked whole even where it extends past the
// partition's assigned ranges — over-coverage of granules no action will
// ever route here for is harmless.
func (lt *hierLockTable) acquireRange(am *actionMsg) bool {
	txn := am.run.txn.ID
	a := am.act
	want := a.Mode.LockFor()
	th := lt.txnOf(txn)
	if xct.LockCovers(th.rootMode, want) {
		lt.stats.acquisitions++
		return true
	}
	if rangeSpansRoot(a) {
		granted, _ := lt.ensureHold(&lt.root, txn, want, am)
		if !granted {
			am.wnLevel, am.wnID = wnRoot, 0
			return false
		}
		th.rootMode = xct.LockLub(th.rootMode, want)
		lt.stats.rangeLocks++
		return true
	}
	wantI := a.Mode.IntentFor()
	if !xct.LockCovers(th.rootMode, wantI) {
		granted, _ := lt.ensureHold(&lt.root, txn, wantI, am)
		if !granted {
			am.wnLevel, am.wnID = wnRoot, 0
			return false
		}
		th.rootMode = xct.LockLub(th.rootMode, wantI)
	}
	gid := granuleOf(a.RangeLo)
	if am.rangeNext > gid {
		gid = am.rangeNext
	}
	for hi := granuleOf(a.RangeHi); gid <= hi; gid++ {
		tg := th.gran(gid)
		if xct.LockCovers(tg.mode, want) {
			tg.pinned = true // the scan relies on this cover: no de-escalation
			continue
		}
		g := lt.granule(gid)
		granted, _ := lt.ensureHold(&g.node, txn, want, am)
		if !granted && lt.yieldEscalated(gid, g, txn, want) {
			granted, _ = lt.ensureHold(&g.node, txn, want, am)
		}
		if !granted {
			am.rangeNext = gid
			am.wnLevel, am.wnID = wnGranule, gid
			return false
		}
		tg.mode = xct.LockLub(tg.mode, want)
		tg.pinned = true
		lt.stats.rangeLocks++
	}
	am.rangeNext = granuleOf(a.RangeHi) + 1
	return true
}

// nodeFor resolves a park position to its node, creating it if the
// cleanup sweeps removed it meanwhile.
func (lt *hierLockTable) nodeFor(level uint8, id int64) *hnode {
	switch level {
	case wnRoot:
		return &lt.root
	case wnGranule:
		return &lt.granule(id).node
	default:
		return lt.granule(granuleOf(id)).key(id)
	}
}

// wait implements lockTable.
func (lt *hierLockTable) wait(am *actionMsg) {
	n := lt.nodeFor(am.wnLevel, am.wnID)
	n.waiters = append(n.waiters, am)
	lt.waiting++
}

// release implements lockTable: drop every hold of txn (counting
// de-escalations), drop its still-waiting claims, promote at every node
// that changed, and garbage-collect empty granules.
func (lt *hierLockTable) release(txn uint64) []*actionMsg {
	th := lt.byTxn[txn]
	delete(lt.byTxn, txn)
	affected := make(map[int64]bool)
	rootChanged := false
	if th != nil {
		th.eachGran(func(gid int64, tg *txnGran) {
			g := lt.granules[gid]
			if g == nil {
				return
			}
			for _, k := range tg.keys {
				if kn := g.keys[k]; kn != nil {
					kn.removeHold(txn)
					if kn.empty() {
						g.dropKey(k)
					}
				}
			}
			if tg.mode != xct.LockNone {
				g.node.removeHold(txn)
				if tg.escalated {
					lt.stats.deescalations++
				}
			}
			affected[gid] = true
		})
		if th.rootMode != xct.LockNone {
			lt.root.removeHold(txn)
			rootChanged = true
		}
	}
	// Claims may wait at nodes the transaction never held; sweep them
	// out wherever they parked (they block grants via the no-overtake
	// rule, so dropping one can unblock a node).
	if lt.waiting > 0 {
		lt.dropClaims(txn, affected, &rootChanged)
	}
	runnable := lt.promote(affected, rootChanged)
	for gid := range affected {
		lt.dropEmptyGranule(gid)
	}
	return runnable
}

// dropClaims removes every waiting claim of txn, marking the nodes it
// changed for promotion.
func (lt *hierLockTable) dropClaims(txn uint64, affected map[int64]bool, rootChanged *bool) {
	drop := func(n *hnode) bool {
		changed := false
		kept := n.waiters[:0]
		for _, w := range n.waiters {
			if w.claim && w.run.txn.ID == txn {
				lt.waiting--
				changed = true
				continue
			}
			kept = append(kept, w)
		}
		n.waiters = kept
		return changed
	}
	if drop(&lt.root) {
		*rootChanged = true
	}
	for gid, g := range lt.granules {
		changed := drop(&g.node)
		for k, kn := range g.keys {
			if drop(kn) {
				changed = true
				if kn.empty() {
					g.dropKey(k)
				}
			}
		}
		if changed {
			affected[gid] = true
		}
	}
}

// promote re-attempts waiters at the root (when its holds changed) and
// at every affected granule — the granule node and each key node under
// it that has waiters. A granule-node release can unblock key waiters
// that parked before an escalation consumed their key nodes, so the
// whole subtree is visited. Ascending granule order for determinism.
func (lt *hierLockTable) promote(affected map[int64]bool, rootChanged bool) []*actionMsg {
	var runnable []*actionMsg
	if rootChanged {
		runnable = append(runnable, lt.promoteNode(&lt.root)...)
	}
	gids := make([]int64, 0, len(affected))
	for gid := range affected {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, gid := range gids {
		g := lt.granules[gid]
		if g == nil {
			continue
		}
		runnable = append(runnable, lt.promoteNode(&g.node)...)
		if lt.keysWithWaiters(g) {
			ks := make([]int64, 0, len(g.keys))
			for k, kn := range g.keys {
				if len(kn.waiters) > 0 {
					ks = append(ks, k)
				}
			}
			sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
			for _, k := range ks {
				if kn := g.keys[k]; kn != nil {
					runnable = append(runnable, lt.promoteNode(kn)...)
				}
			}
		}
	}
	return runnable
}

func (lt *hierLockTable) keysWithWaiters(g *granule) bool {
	for _, kn := range g.keys {
		if len(kn.waiters) > 0 {
			return true
		}
	}
	return false
}

// promoteNode re-attempts a node's waiters in FIFO order. A waiter that
// acquires fully becomes runnable; one still blocked HERE goes back to
// the queue front and stops the scan; one now blocked at a different
// level re-parks there (tail) and the scan continues. Re-attempting is
// deterministic between grants, so a moved waiter cannot ping-pong:
// its next failure at the new node front-parks it there.
func (lt *hierLockTable) promoteNode(n *hnode) []*actionMsg {
	var out []*actionMsg
	prev := lt.promotingFrom
	lt.promotingFrom = n
	defer func() { lt.promotingFrom = prev }()
	for len(n.waiters) > 0 {
		w := n.waiters[0]
		n.waiters = n.waiters[:copy(n.waiters, n.waiters[1:])]
		lt.waiting--
		if lt.acquire(w) {
			out = append(out, w)
			continue
		}
		if lt.nodeFor(w.wnLevel, w.wnID) == n {
			n.waiters = append(n.waiters, nil)
			copy(n.waiters[1:], n.waiters)
			n.waiters[0] = w
			lt.waiting++
			break
		}
		lt.wait(w)
	}
	return out
}

func (lt *hierLockTable) dropEmptyGranule(gid int64) {
	if g := lt.granules[gid]; g != nil && g.node.empty() && len(g.keys) == 0 {
		delete(lt.granules, gid)
	}
}

// sweepWaiters implements lockTable.
func (lt *hierLockTable) sweepWaiters(judge func(*actionMsg) bool) {
	sweep := func(n *hnode) {
		kept := n.waiters[:0]
		for _, w := range n.waiters {
			if judge(w) {
				kept = append(kept, w)
			} else {
				lt.waiting--
			}
		}
		n.waiters = kept
	}
	sweep(&lt.root)
	for gid, g := range lt.granules {
		sweep(&g.node)
		for k, kn := range g.keys {
			sweep(kn)
			if kn.empty() {
				g.dropKey(k)
			}
		}
		if g.node.empty() && len(g.keys) == 0 {
			delete(lt.granules, gid)
		}
	}
}

// waiterMovesAbove routes a migrating waiter at a split: point waiters
// go by their routing key; ranged waiters go by their routing key too
// (the action's locks cover the intersection of its interval with the
// owning partition's ranges, and the owner after the split is decided
// by the key).
func waiterMovesAbove(w *actionMsg, cut int64) bool { return w.routeKey >= cut }

func exportNode(n *hnode) llEntry {
	return llEntry{holders: n.holders, waiters: n.waiters}
}

// extractAbove implements lockTable: hand the hierarchy's state for
// keys >= cut to a split target. Granules wholly above the cut move
// wholesale — the O(granules) transfer the flat table's O(keys) copy
// becomes. The straddling granule splits its key nodes at the cut and
// DUPLICATES its granule-node holders to both sides: a coarse hold
// covered both halves, so both partitions must keep enforcing it (the
// release broadcast reaches every partition of the table and clears
// both copies). Root holders are duplicated for the same reason.
func (lt *hierLockTable) extractAbove(cut int64) *movedLocks {
	cutG := granuleOf(cut)
	mv := &hierMoved{granules: make(map[int64]*hierGranMoved)}
	for gid, g := range lt.granules {
		if gid < cutG {
			continue
		}
		if gid > cutG {
			mg := &hierGranMoved{node: exportNode(&g.node), keys: make(map[int64]*llEntry, len(g.keys))}
			lt.waiting -= len(g.node.waiters)
			for k, kn := range g.keys {
				mg.keys[k] = &llEntry{holders: kn.holders, waiters: kn.waiters}
				lt.waiting -= len(kn.waiters)
			}
			mv.granules[gid] = mg
			lt.keyNodes -= len(g.keys)
			delete(lt.granules, gid)
			continue
		}
		// The straddling granule.
		mg := &hierGranMoved{keys: make(map[int64]*llEntry)}
		mg.node.holders = append([]llHold(nil), g.node.holders...)
		keepW := g.node.waiters[:0]
		for _, w := range g.node.waiters {
			if waiterMovesAbove(w, cut) {
				mg.node.waiters = append(mg.node.waiters, w)
				lt.waiting--
			} else {
				keepW = append(keepW, w)
			}
		}
		g.node.waiters = keepW
		for k, kn := range g.keys {
			if k >= cut {
				mg.keys[k] = &llEntry{holders: kn.holders, waiters: kn.waiters}
				lt.waiting -= len(kn.waiters)
				g.dropKey(k)
			}
		}
		if len(mg.node.holders) > 0 || len(mg.node.waiters) > 0 || len(mg.keys) > 0 {
			mv.granules[gid] = mg
		}
		if g.node.empty() && len(g.keys) == 0 {
			delete(lt.granules, gid)
		}
	}
	mv.root.holders = append([]llHold(nil), lt.root.holders...)
	keepW := lt.root.waiters[:0]
	for _, w := range lt.root.waiters {
		if waiterMovesAbove(w, cut) {
			mv.root.waiters = append(mv.root.waiters, w)
			lt.waiting--
		} else {
			keepW = append(keepW, w)
		}
	}
	lt.root.waiters = keepW
	lt.rebuildTxnIndex()
	return &movedLocks{hier: mv}
}

// extractAll implements lockTable (merge/evacuate).
func (lt *hierLockTable) extractAll() *movedLocks {
	mv := &hierMoved{
		root:     exportNode(&lt.root),
		granules: make(map[int64]*hierGranMoved, len(lt.granules)),
	}
	for gid, g := range lt.granules {
		mg := &hierGranMoved{node: exportNode(&g.node), keys: make(map[int64]*llEntry, len(g.keys))}
		for k, kn := range g.keys {
			mg.keys[k] = &llEntry{holders: kn.holders, waiters: kn.waiters}
		}
		mv.granules[gid] = mg
	}
	lt.root = hnode{}
	lt.granules = make(map[int64]*granule)
	lt.byTxn = make(map[uint64]*txnLocks)
	lt.waiting = 0
	lt.keyNodes = 0
	return &movedLocks{hier: mv}
}

// adopt implements lockTable: merge migrated hierarchy state in.
// Adopted waiters keep their seniority (prepended); a holder already
// present for the same transaction (a coarse duplicate from a split, or
// a lock granted here during the hand-off window) merges by lub.
func (lt *hierLockTable) adopt(mv *movedLocks) []*actionMsg {
	if mv.keys != nil {
		// The engine configures every partition with the same table kind;
		// flat state can only arrive here through a bug.
		panic("dora: flat lock state adopted into a hierarchical table")
	}
	in := mv.hier
	if in == nil {
		return nil
	}
	for _, h := range in.root.holders {
		lt.root.mergeHold(h)
	}
	if len(in.root.waiters) > 0 {
		lt.root.waiters = append(append([]*actionMsg(nil), in.root.waiters...), lt.root.waiters...)
		lt.waiting += len(in.root.waiters)
	}
	affected := make(map[int64]bool, len(in.granules))
	for gid, mg := range in.granules {
		g := lt.granule(gid)
		for _, h := range mg.node.holders {
			g.node.mergeHold(h)
		}
		if len(mg.node.waiters) > 0 {
			g.node.waiters = append(append([]*actionMsg(nil), mg.node.waiters...), g.node.waiters...)
			lt.waiting += len(mg.node.waiters)
		}
		for k, e := range mg.keys {
			kn := g.key(k)
			for _, h := range e.holders {
				kn.mergeHold(h)
			}
			if len(e.waiters) > 0 {
				kn.waiters = append(append([]*actionMsg(nil), e.waiters...), kn.waiters...)
				lt.waiting += len(e.waiters)
			}
		}
		affected[gid] = true
	}
	lt.rebuildTxnIndex()
	runnable := lt.promote(affected, true)
	for gid := range affected {
		lt.dropEmptyGranule(gid)
	}
	return runnable
}

// rebuildTxnIndex reconstructs the per-transaction index from the node
// holders after a migration reshaped the hierarchy. Escalated flags are
// reset — an adopted coarse hold simply looks like a range lock, and
// the keys under it may escalate again on their own merits.
func (lt *hierLockTable) rebuildTxnIndex() {
	lt.byTxn = make(map[uint64]*txnLocks)
	for _, h := range lt.root.holders {
		lt.txnOf(h.txn).rootMode = h.mode
	}
	for gid, g := range lt.granules {
		for _, h := range g.node.holders {
			lt.txnOf(h.txn).gran(gid).mode = h.mode
		}
		for k, kn := range g.keys {
			for _, h := range kn.holders {
				tg := lt.txnOf(h.txn).gran(gid)
				tg.keys = append(tg.keys, k)
			}
		}
	}
}

// keyBusy implements lockTable: any lock state covering routing value v.
// One granule probe plus one key probe in the common case — never a
// table sweep. Conservative at coarse levels: a granule-level hold or
// waiter of any kind reports the whole granule busy.
func (lt *hierLockTable) keyBusy(v int64) bool {
	lt.stats.keyProbes++
	if lt.rootCoarse() {
		return true
	}
	g := lt.granules[granuleOf(v)]
	if g == nil {
		return false
	}
	for _, h := range g.node.holders {
		if h.mode == xct.LockS || h.mode == xct.LockSIX || h.mode == xct.LockX {
			return true
		}
	}
	if len(g.node.waiters) > 0 {
		return true
	}
	return g.keys[v] != nil
}

// rangeBusy implements lockTable: any lock state intersecting [lo, hi],
// in O(granules-with-state) — the one-intent maintenance gate.
func (lt *hierLockTable) rangeBusy(lo, hi int64) bool {
	lt.stats.rangeProbes++
	if lt.rootCoarse() {
		return true
	}
	gLo, gHi := granuleOf(lo), granuleOf(hi)
	for gid, g := range lt.granules {
		if gid < gLo || gid > gHi {
			continue
		}
		if !g.node.empty() {
			return true
		}
		for k := range g.keys {
			if lo <= k && k <= hi {
				return true
			}
		}
	}
	return false
}

// rootCoarse reports partition-level lock state: a coarse root hold, or
// anything queued there (conservative — a root waiter is about to cover
// the partition).
func (lt *hierLockTable) rootCoarse() bool {
	for _, h := range lt.root.holders {
		if h.mode == xct.LockS || h.mode == xct.LockSIX || h.mode == xct.LockX {
			return true
		}
	}
	return len(lt.root.waiters) > 0
}

// heldKeys implements lockTable: key nodes plus coarse summaries, the
// monitor's "how much is locked" gauge. It is mirrored after every
// batch, so it must be O(1): key nodes come from the maintained
// counter, and every live granule counts as one summary (granules only
// exist while they hold state — empties are dropped eagerly).
func (lt *hierLockTable) heldKeys() int {
	n := lt.keyNodes + len(lt.granules)
	if len(lt.root.holders) > 0 {
		n++
	}
	return n
}

func (lt *hierLockTable) waitingCount() int { return lt.waiting }

func (lt *hierLockTable) coarseProbes() bool { return true }

func (lt *hierLockTable) snapshotStats() lockStats { return lt.stats }
