package dora

import (
	"testing"

	"dora/internal/tx"
	"dora/internal/xct"
)

func mkMsg(txnID uint64, mode xct.Mode, claim bool) *actionMsg {
	return &actionMsg{
		act:   &xct.Action{Mode: mode},
		run:   &flowRun{txn: &tx.Txn{ID: txnID}},
		claim: claim,
	}
}

// park queues am as a waiter on key (the park position acquire would
// have recorded).
func park(lt lockTable, key int64, am *actionMsg) {
	am.routeKey = key
	am.wnLevel, am.wnID = wnKey, key
	lt.wait(am)
}

func TestLocalLockReadersShare(t *testing.T) {
	lt := newFlatLockTable()
	if !lt.tryAcquire(1, 10, xct.Read) {
		t.Fatal("first reader refused")
	}
	if !lt.tryAcquire(1, 11, xct.Read) {
		t.Fatal("second reader refused")
	}
	if lt.tryAcquire(1, 12, xct.Write) {
		t.Fatal("writer admitted alongside readers")
	}
}

func TestLocalLockWriterExcludes(t *testing.T) {
	lt := newFlatLockTable()
	if !lt.tryAcquire(1, 10, xct.Write) {
		t.Fatal("writer refused on free key")
	}
	if lt.tryAcquire(1, 11, xct.Read) || lt.tryAcquire(1, 11, xct.Write) {
		t.Fatal("conflicting grant under writer")
	}
	// Same transaction re-acquires freely.
	if !lt.tryAcquire(1, 10, xct.Read) || !lt.tryAcquire(1, 10, xct.Write) {
		t.Fatal("same-txn re-acquire refused")
	}
}

func TestLocalLockUpgrade(t *testing.T) {
	lt := newFlatLockTable()
	if !lt.tryAcquire(5, 20, xct.Read) {
		t.Fatal("reader refused")
	}
	// Sole holder upgrades.
	if !lt.tryAcquire(5, 20, xct.Write) {
		t.Fatal("sole-holder upgrade refused")
	}
	if lt.tryAcquire(5, 21, xct.Read) {
		t.Fatal("reader admitted under upgraded writer")
	}
	// Shared holders cannot upgrade.
	lt2 := newFlatLockTable()
	lt2.tryAcquire(7, 30, xct.Read)
	lt2.tryAcquire(7, 31, xct.Read)
	if lt2.tryAcquire(7, 30, xct.Write) {
		t.Fatal("upgrade granted with co-holders")
	}
}

func TestLocalLockFIFOWaiters(t *testing.T) {
	lt := newFlatLockTable()
	lt.tryAcquire(1, 10, xct.Write)
	w1 := mkMsg(11, xct.Write, false)
	park(lt, 1, w1)
	// A reader arriving later must not overtake the queued writer.
	if lt.tryAcquire(1, 12, xct.Read) {
		t.Fatal("reader overtook queued writer")
	}
	w2 := mkMsg(12, xct.Read, false)
	park(lt, 1, w2)
	if lt.waiting != 2 {
		t.Fatalf("waiting = %d", lt.waiting)
	}
	runnable := lt.release(10)
	if len(runnable) != 1 || runnable[0] != w1 {
		t.Fatalf("release granted %d waiters, want the writer first", len(runnable))
	}
	if lt.waiting != 1 {
		t.Fatalf("waiting = %d after first grant", lt.waiting)
	}
	runnable = lt.release(11)
	if len(runnable) != 1 || runnable[0] != w2 {
		t.Fatal("reader not granted after writer release")
	}
}

func TestLocalLockBatchedReaderGrant(t *testing.T) {
	lt := newFlatLockTable()
	lt.tryAcquire(1, 10, xct.Write)
	r1, r2 := mkMsg(11, xct.Read, false), mkMsg(12, xct.Read, false)
	park(lt, 1, r1)
	park(lt, 1, r2)
	runnable := lt.release(10)
	if len(runnable) != 2 {
		t.Fatalf("released %d readers, want both", len(runnable))
	}
}

func TestLocalLockReleaseDropsWaitingClaims(t *testing.T) {
	lt := newFlatLockTable()
	lt.tryAcquire(1, 10, xct.Write)
	cl := mkMsg(11, xct.Write, true)
	park(lt, 1, cl)
	// Txn 11 aborts elsewhere; its release must purge the parked claim
	// even though it holds nothing.
	_ = lt.release(11)
	if lt.waiting != 0 {
		t.Fatalf("claim leaked: waiting = %d", lt.waiting)
	}
	// And the key frees normally afterwards.
	if got := lt.release(10); len(got) != 0 {
		t.Fatalf("unexpected runnable: %d", len(got))
	}
	if lt.heldKeys() != 0 {
		t.Fatalf("entries leaked: %d", lt.heldKeys())
	}
}

func TestLocalLockExtractAndAdopt(t *testing.T) {
	lt := newFlatLockTable()
	lt.tryAcquire(10, 1, xct.Write)
	lt.tryAcquire(90, 2, xct.Write)
	w := mkMsg(3, xct.Write, false)
	park(lt, 90, w)
	moved := lt.extractAbove(50)
	if len(moved.keys) != 1 || moved.keys[90] == nil {
		t.Fatalf("moved = %v", moved.keys)
	}
	if lt.waiting != 0 {
		t.Fatalf("waiting after extract = %d", lt.waiting)
	}
	if _, ok := lt.entries[10]; !ok {
		t.Fatal("low key lost in split")
	}

	dst := newFlatLockTable()
	runnable := dst.adopt(moved)
	if len(runnable) != 0 {
		t.Fatal("waiter granted while holder still present")
	}
	if dst.waiting != 1 {
		t.Fatalf("adopted waiting = %d", dst.waiting)
	}
	got := dst.release(2)
	if len(got) != 1 || got[0] != w {
		t.Fatal("adopted waiter not granted on release")
	}
}

func TestInboxAtomicMultiEnqueueOrder(t *testing.T) {
	a, b := newInbox(), newInbox()
	m1, m2 := mkMsg(1, xct.Read, false), mkMsg(1, xct.Read, false)
	a.lockForEnqueue()
	b.lockForEnqueue()
	a.appendLocked(m1)
	b.appendLocked(m2)
	a.unlockAfterEnqueue()
	b.unlockAfterEnqueue()
	if a.length() != 1 || b.length() != 1 {
		t.Fatal("atomic enqueue lost messages")
	}
	batch, ok := a.popAll(nil)
	if !ok || len(batch) != 1 || batch[0] != m1 {
		t.Fatal("popAll order broken")
	}
	if a.length() != 0 {
		t.Fatalf("length after drain = %d", a.length())
	}
}

func TestInboxCloseDrains(t *testing.T) {
	ib := newInbox()
	ib.push(mkMsg(1, xct.Read, false))
	ib.close()
	if batch, ok := ib.popAll(nil); !ok || len(batch) != 1 {
		t.Fatal("queued message lost at close")
	}
	if _, ok := ib.popAll(nil); ok {
		t.Fatal("popAll on closed empty inbox returned a message")
	}
	if ib.pushChecked(mkMsg(2, xct.Read, false)) {
		t.Fatal("pushChecked accepted a message after close")
	}
}

func TestInboxBlockingPop(t *testing.T) {
	ib := newInbox()
	done := make(chan msg, 1)
	go func() {
		batch, _ := ib.popAll(nil)
		done <- batch[0]
	}()
	m := mkMsg(4, xct.Write, false)
	ib.push(m)
	if got := <-done; got != m {
		t.Fatal("blocked popAll returned wrong message")
	}
}
