package dora

import (
	"testing"

	"dora/internal/tx"
	"dora/internal/xct"
)

func hierPoint(txn uint64, key int64, mode xct.Mode) *actionMsg {
	am := mkMsg(txn, mode, false)
	am.routeKey = key
	return am
}

func hierRange(txn uint64, lo, hi int64, mode xct.Mode) *actionMsg {
	return &actionMsg{
		act: &xct.Action{Mode: mode, Ranged: true, RangeLo: lo, RangeHi: hi},
		run: &flowRun{txn: &tx.Txn{ID: txn}},
	}
}

func TestHierIntentShareKeyExclude(t *testing.T) {
	lt := newHierLockTable(-1)
	if !lt.acquire(hierPoint(1, 10, xct.Write)) {
		t.Fatal("writer refused on free key")
	}
	// Another writer in the same granule: intents are compatible, only
	// the key nodes exclude.
	if !lt.acquire(hierPoint(2, 11, xct.Write)) {
		t.Fatal("sibling-key writer refused (intents must share)")
	}
	if lt.acquire(hierPoint(3, 10, xct.Read)) {
		t.Fatal("reader admitted on a write-held key")
	}
	// Same transaction re-acquires freely.
	if !lt.acquire(hierPoint(1, 10, xct.Read)) {
		t.Fatal("same-txn re-acquire refused")
	}
	if lt.keyNodes != 2 {
		t.Fatalf("keyNodes = %d, want 2", lt.keyNodes)
	}
}

func TestHierRangeLockCoarse(t *testing.T) {
	lt := newHierLockTable(-1)
	// [0, 300] spans two granules: two coarse S grants, no key nodes.
	if !lt.acquire(hierRange(1, 0, 300, xct.Read)) {
		t.Fatal("range S refused on empty table")
	}
	if lt.stats.rangeLocks != 2 {
		t.Fatalf("rangeLocks = %d, want 2", lt.stats.rangeLocks)
	}
	if lt.keyNodes != 0 {
		t.Fatalf("range scan created %d key nodes", lt.keyNodes)
	}
	// A writer under the covered granule blocks at the granule; a reader
	// passes (IS is compatible with S).
	if lt.acquire(hierPoint(2, 10, xct.Write)) {
		t.Fatal("writer admitted under range S")
	}
	if !lt.acquire(hierPoint(3, 10, xct.Read)) {
		t.Fatal("reader refused under range S")
	}
	// The scan's cover is pinned: a conflicting acquire must not
	// de-escalate it.
	if lt.stats.deescalations != 0 {
		t.Fatalf("range cover yielded: deescalations = %d", lt.stats.deescalations)
	}
}

func TestHierRangeSpansRoot(t *testing.T) {
	lt := newHierLockTable(-1)
	hi := int64(rootSpanGranules+1) << granuleBits
	if !lt.acquire(hierRange(1, 0, hi, xct.Write)) {
		t.Fatal("wide range X refused on empty table")
	}
	if i := lt.root.holdOf(1); i < 0 || lt.root.holders[i].mode != xct.LockX {
		t.Fatal("wide range did not take a partition-level X")
	}
	if len(lt.granules) != 0 {
		t.Fatalf("wide range locked %d granules, want root only", len(lt.granules))
	}
	if lt.acquire(hierPoint(2, 5, xct.Read)) {
		t.Fatal("reader admitted under root X")
	}
	if !lt.keyBusy(12345) || !lt.rangeBusy(0, 10) {
		t.Fatal("busy probes missed the root lock")
	}
	if lt.heldKeys() != 1 {
		t.Fatalf("heldKeys = %d, want 1 (the root summary)", lt.heldKeys())
	}
}

func TestHierEscalation(t *testing.T) {
	lt := newHierLockTable(4)
	for k := int64(0); k < 4; k++ {
		if !lt.acquire(hierPoint(1, k, xct.Write)) {
			t.Fatalf("write %d refused", k)
		}
	}
	if lt.stats.escalations != 1 {
		t.Fatalf("escalations = %d, want 1", lt.stats.escalations)
	}
	if lt.keyNodes != 0 {
		t.Fatalf("key holds not folded: keyNodes = %d", lt.keyNodes)
	}
	g := lt.granules[0]
	if i := g.node.holdOf(1); i < 0 || g.node.holders[i].mode != xct.LockX {
		t.Fatal("escalated granule hold is not X")
	}
	// Further keys ride the coarse hold: one probe, no new nodes.
	a0 := lt.stats.acquisitions
	if !lt.acquire(hierPoint(1, 7, xct.Write)) {
		t.Fatal("covered acquire refused")
	}
	if got := lt.stats.acquisitions - a0; got != 1 {
		t.Fatalf("covered acquire cost %d grant ops, want 1", got)
	}
	// Release counts the de-escalation and empties the table.
	_ = lt.release(1)
	if lt.stats.deescalations != 1 {
		t.Fatalf("deescalations = %d, want 1", lt.stats.deescalations)
	}
	if lt.heldKeys() != 0 || lt.keyNodes != 0 || len(lt.granules) != 0 {
		t.Fatalf("state leaked: heldKeys=%d keyNodes=%d granules=%d",
			lt.heldKeys(), lt.keyNodes, len(lt.granules))
	}
}

func TestHierConflictDeescalation(t *testing.T) {
	lt := newHierLockTable(4)
	for k := int64(0); k < 4; k++ {
		lt.acquire(hierPoint(1, k, xct.Write))
	}
	if lt.stats.escalations != 1 {
		t.Fatalf("escalations = %d, want 1", lt.stats.escalations)
	}
	// A conflicting writer on an UNTOUCHED key in the granule: the
	// escalated hold yields back to key granularity instead of blocking
	// the whole granule.
	if !lt.acquire(hierPoint(2, 9, xct.Write)) {
		t.Fatal("conflict did not de-escalate the coarse hold")
	}
	if lt.stats.deescalations != 1 {
		t.Fatalf("deescalations = %d, want 1", lt.stats.deescalations)
	}
	// The holder's key locks are back, at the escalated (conservative)
	// mode.
	if lt.acquire(hierPoint(3, 2, xct.Write)) {
		t.Fatal("materialized key hold missing after de-escalation")
	}
	// And the backoff suppresses the next escalation trigger.
	if lt.escSuppress == 0 {
		t.Fatal("conflict de-escalation did not arm the backoff")
	}
	for k := int64(512); k < 516; k++ {
		lt.acquire(hierPoint(2, k, xct.Write))
	}
	if lt.stats.escalations != 1 {
		t.Fatal("escalation not suppressed after a conflict de-escalation")
	}
}

func TestHierExtractAdopt(t *testing.T) {
	lt := newHierLockTable(-1)
	lt.acquire(hierPoint(1, 10, xct.Write))
	lt.acquire(hierPoint(2, 600, xct.Write))
	w := hierPoint(3, 600, xct.Write)
	if lt.acquire(w) {
		t.Fatal("conflicting writer granted")
	}
	lt.wait(w)
	moved := lt.extractAbove(512)
	if moved.hier == nil || moved.hier.granules[granuleOf(600)] == nil {
		t.Fatal("high granule state not extracted")
	}
	if lt.keyNodes != 1 {
		t.Fatalf("keyNodes after extract = %d, want 1", lt.keyNodes)
	}
	if lt.waiting != 0 {
		t.Fatalf("waiting after extract = %d, want 0 (waiter travels)", lt.waiting)
	}

	dst := newHierLockTable(-1)
	if got := dst.adopt(moved); len(got) != 0 {
		t.Fatal("waiter granted while its blocker still holds")
	}
	if dst.waiting != 1 || dst.keyNodes != 1 {
		t.Fatalf("adopted waiting=%d keyNodes=%d, want 1/1", dst.waiting, dst.keyNodes)
	}
	got := dst.release(2)
	if len(got) != 1 || got[0] != w {
		t.Fatal("adopted waiter not granted on the blocker's release")
	}
}

// TestHierKeyNodesInvariant cross-checks the O(1) heldKeys counter
// against a recount through escalation, conflict de-escalation, release
// and migration — the operations that mutate key nodes.
func TestHierKeyNodesInvariant(t *testing.T) {
	recount := func(lt *hierLockTable) int {
		n := 0
		for _, g := range lt.granules {
			n += len(g.keys)
		}
		return n
	}
	check := func(lt *hierLockTable, step string) {
		t.Helper()
		if lt.keyNodes != recount(lt) {
			t.Fatalf("%s: keyNodes = %d, recount = %d", step, lt.keyNodes, recount(lt))
		}
	}
	lt := newHierLockTable(3)
	for k := int64(0); k < 3; k++ { // escalates
		lt.acquire(hierPoint(1, k, xct.Write))
	}
	check(lt, "escalate")
	lt.acquire(hierPoint(2, 9, xct.Write)) // conflict de-escalation
	check(lt, "deescalate")
	lt.acquire(hierPoint(2, 300, xct.Read))
	lt.acquire(hierPoint(1, 600, xct.Write))
	check(lt, "spread")
	_ = lt.release(1)
	check(lt, "release")
	mv := lt.extractAbove(256)
	check(lt, "extractAbove")
	dst := newHierLockTable(3)
	_ = dst.adopt(mv)
	check(dst, "adopt")
	_ = lt.extractAll()
	if lt.keyNodes != 0 {
		t.Fatalf("extractAll left keyNodes = %d", lt.keyNodes)
	}
}
