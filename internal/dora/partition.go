package dora

import (
	"time"

	"dora/internal/catalog"
	"dora/internal/metrics"
	"dora/internal/sm"
	"dora/internal/xct"
)

// msg is anything a partition worker can receive.
type msg interface{}

// actionMsg carries one transaction action to the partition owning its
// routing key.
type actionMsg struct {
	act      *xct.Action
	run      *flowRun
	rvp      *rvp  // nil for claims
	routeKey int64 // value in the table's current partition-field space
	at       time.Time
	// claim marks an early lock acquisition for a later-phase action:
	// enqueued atomically with phase 0, it makes every statically-keyed
	// lock of the transaction appear in all queues in one canonical
	// order, which is DORA's deadlock-avoidance protocol. A claim has no
	// body and reports to no RVP.
	claim bool
}

// releaseMsg tells a partition that txn finished; drop its local locks.
type releaseMsg struct{ txn uint64 }

// splitMsg tells a partition to hand keys >= at over to partition to.
type splitMsg struct {
	at int64
	to *partition
}

// adoptMsg delivers migrated lock-table state.
type adoptMsg struct{ entries map[int64]*llEntry }

// evacuateMsg tells a partition to hand everything to partition to and
// enter forwarding mode (merge).
type evacuateMsg struct {
	to  *partition
	ack chan struct{}
}

// clearMsg resets the local lock table under a quiesced engine
// (re-partitioning on a new field).
type clearMsg struct{ ack chan struct{} }

// dieMsg terminates the worker after the inbox drains to it.
type dieMsg struct{ ack chan struct{} }

// tickMsg triggers the waiter-timeout sweep.
type tickMsg struct{}

// partition is a DORA micro-engine: one goroutine owning one logical
// partition of one table, executing its action queue serially against a
// private lock table (paper §1.1).
type partition struct {
	eng    *Dora
	tbl    *catalog.Table
	worker int // global worker id; also the routing handle
	in     *inbox
	locks  *localLockTable
	ses    *sm.Session

	// forward is non-nil after evacuation (merge): everything is
	// forwarded to the adopting partition.
	forward *partition
	// adoptWait buffers messages until migrated state arrives (split).
	adoptWait bool
	pending   []msg

	// Executed counts actions run; Waited counts grant waits; Stale
	// counts re-routed messages (arrived after a range moved away).
	Executed metrics.Counter
	Waited   metrics.Counter
	Stale    metrics.Counter
	// HeldKeys mirrors the local lock table size for the monitor;
	// WaitingNow mirrors its parked-waiter count (congestion signal).
	HeldKeys   metrics.Gauge
	WaitingNow metrics.Gauge
}

func newPartition(e *Dora, tbl *catalog.Table, worker int, adoptWait bool) *partition {
	return &partition{
		eng:       e,
		tbl:       tbl,
		worker:    worker,
		in:        newInbox(),
		locks:     newLocalLockTable(),
		ses:       e.sm.Session(worker),
		adoptWait: adoptWait,
	}
}

// loop is the worker body.
func (p *partition) loop() {
	defer p.eng.wg.Done()
	for {
		m, ok := p.in.pop()
		if !ok {
			return
		}
		exit := p.handle(m)
		p.WaitingNow.Set(int64(p.locks.waiting))
		p.HeldKeys.Set(int64(p.locks.heldKeys()))
		if exit {
			return
		}
	}
}

// handle processes one message; it returns true when the worker must exit.
func (p *partition) handle(m msg) bool {
	// Forwarding mode (after merge evacuation): everything moves on.
	if p.forward != nil {
		switch t := m.(type) {
		case *dieMsg:
			close(t.ack)
			return true
		default:
			p.forward.in.push(m)
			return false
		}
	}
	// Adoption wait (split target): buffer until state arrives.
	if p.adoptWait {
		switch t := m.(type) {
		case *adoptMsg:
			p.adoptWait = false
			runnable := p.locks.adopt(t.entries)
			pend := p.pending
			p.pending = nil
			for _, am := range runnable {
				p.execute(am)
			}
			for _, bm := range pend {
				if p.handle(bm) {
					return true
				}
			}
		case *dieMsg:
			close(t.ack)
			return true
		default:
			p.pending = append(p.pending, m)
		}
		return false
	}

	switch t := m.(type) {
	case *actionMsg:
		p.handleAction(t)
	case releaseMsg:
		runnable := p.locks.release(t.txn)
		p.HeldKeys.Set(int64(p.locks.heldKeys()))
		for _, am := range runnable {
			p.execute(am)
		}
	case *splitMsg:
		entries := p.locks.extractAbove(t.at)
		p.HeldKeys.Set(int64(p.locks.heldKeys()))
		t.to.in.push(&adoptMsg{entries: entries})
	case *adoptMsg:
		// Merge adoption into a live partition.
		runnable := p.locks.adopt(t.entries)
		p.HeldKeys.Set(int64(p.locks.heldKeys()))
		for _, am := range runnable {
			p.execute(am)
		}
	case *evacuateMsg:
		entries := p.locks.extractAll()
		p.HeldKeys.Set(0)
		t.to.in.push(&adoptMsg{entries: entries})
		p.forward = t.to
		close(t.ack)
	case *clearMsg:
		p.locks = newLocalLockTable()
		p.HeldKeys.Set(0)
		close(t.ack)
	case tickMsg:
		p.sweepTimeouts()
	case *dieMsg:
		close(t.ack)
		return true
	}
	return false
}

func (p *partition) handleAction(am *actionMsg) {
	// Stale routing: the range moved (split/merge raced the dispatch).
	// Send it to the current owner.
	if owner := p.eng.ownerOf(p.tbl, am.routeKey); owner != nil && owner != p {
		p.Stale.Inc()
		owner.in.push(am)
		return
	}
	if am.claim && am.run.failed() {
		return // aborted before the claim was processed: drop it
	}
	if p.locks.tryAcquire(am.routeKey, am.run.txn.ID, am.act.Mode) {
		p.HeldKeys.Set(int64(p.locks.heldKeys()))
		p.execute(am)
		return
	}
	p.Waited.Inc()
	p.locks.wait(am.routeKey, am)
}

// execute runs a granted action and reports to its RVP. Granted claims
// have nothing to run: the lock is now held for the future action.
func (p *partition) execute(am *actionMsg) {
	if am.claim {
		return
	}
	p.Executed.Inc()
	if am.run.failed() {
		// The transaction already aborted: skip the body, just report so
		// the RVP completes and the rollback can proceed.
		p.eng.report(am.rvp, nil)
		return
	}
	env := &xct.Env{Txn: am.run.txn, Ses: p.ses}
	err := am.act.Run(env)
	p.eng.report(am.rvp, err)
}

// sweepTimeouts aborts waiters stuck beyond the engine's local timeout —
// the safety net for cross-partition waits the canonical enqueue order
// cannot serialize (multi-phase conflicts).
func (p *partition) sweepTimeouts() {
	limit := p.eng.cfg.LocalTimeout
	if limit <= 0 {
		return
	}
	now := time.Now()
	for key, e := range p.locks.entries {
		kept := e.waiters[:0]
		for _, w := range e.waiters {
			if w.claim {
				// Claims never time out (the claimed action's own wait
				// does); drop them once their transaction has failed.
				if w.run.failed() {
					continue
				}
				kept = append(kept, w)
				continue
			}
			if now.Sub(w.at) > limit && !w.run.failed() {
				p.eng.Timeouts.Inc()
				p.eng.report(w.rvp, ErrLocalTimeout)
				continue
			}
			// Already-failed runs: flush them out too, reporting.
			if w.run.failed() {
				p.eng.report(w.rvp, nil)
				continue
			}
			kept = append(kept, w)
		}
		e.waiters = kept
		if len(e.holders) == 0 && len(e.waiters) == 0 {
			delete(p.locks.entries, key)
		}
	}
}

// queueLen reports the inbox length (load-balancing signal).
func (p *partition) queueLen() int { return p.in.length() }
