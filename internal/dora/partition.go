package dora

import (
	"runtime"
	"sync/atomic"
	"time"

	"dora/internal/btree"
	"dora/internal/catalog"
	"dora/internal/metrics"
	"dora/internal/page"
	"dora/internal/sm"
	"dora/internal/storage"
	"dora/internal/trace"
	"dora/internal/xct"
)

// msg is anything a partition worker can receive.
type msg interface{}

// actionMsg carries one transaction action to the partition owning its
// routing key.
type actionMsg struct {
	act      *xct.Action
	run      *flowRun
	rvp      *rvp  // nil for claims
	routeKey int64 // value in the table's current partition-field space
	at       time.Time
	// claim marks an early lock acquisition for a later-phase action:
	// enqueued atomically with phase 0, it makes every statically-keyed
	// lock of the transaction appear in all queues in one canonical
	// order, which is DORA's deadlock-avoidance protocol. A claim has no
	// body and reports to no RVP.
	claim bool
	// wnLevel/wnID record where the lock table blocked this action (the
	// node wait() parks it at): a key, a granule, or the partition root.
	// rangeNext is a ranged acquire's resume cursor — the next key (flat
	// table) or granule id (hierarchical) not yet locked, so a promoted
	// range continues instead of restarting.
	wnLevel   uint8
	wnID      int64
	rangeNext int64
}

// releaseMsg tells a partition that txn finished; drop its local locks.
type releaseMsg struct{ txn uint64 }

// splitMsg tells a partition to hand the routing interval [at, hi] over
// to partition to: local-lock state for keys >= at migrates, and every
// claimed index subtree range mapping to the interval changes owner.
type splitMsg struct {
	at int64
	hi int64
	to *partition
}

// adoptMsg delivers migrated lock-table state.
type adoptMsg struct{ locks *movedLocks }

// evacuateMsg tells a partition to hand everything to partition to and
// enter forwarding mode (merge).
type evacuateMsg struct {
	to  *partition
	ack chan struct{}
}

// shipped is a message whose sender blocks on completion: it must be
// completed (ok) or failed — never silently dropped — and, when a
// retiring worker has a successor, it may be forwarded instead.
// applyMsg and maintMsg share this contract; dispose and forwarding
// handle them uniformly through it.
type shipped interface {
	msg
	failShip() // ok=false + wake the sender (worker retired, re-resolve)
}

// applyMsg ships a foreign access-path operation to the worker that owns
// the target subtree: the partitioned B+tree's OwnerExec hook. The worker
// runs fn with its own ownership token; ok=false tells the sender the
// worker retired without running it (re-resolve and retry). path/cyc are
// the debug-mode ship-cycle detector's chain bookkeeping (shipcheck.go).
type applyMsg struct {
	fn   func(tok *btree.Owner)
	done chan struct{}
	ok   bool
	path []shipHop
	cyc  *shipCycleError
}

func (m *applyMsg) failShip() {
	m.ok = false
	close(m.done)
}

// maintMsg ships a background-maintenance operation (heap migration,
// re-stamping, subtree compaction) to a partition worker's thread, where
// it runs with an OwnerCtx view of the partition. Same completion
// contract as applyMsg.
type maintMsg struct {
	fn   func(*OwnerCtx)
	done chan struct{}
	ok   bool
	path []shipHop
	cyc  *shipCycleError
}

func (m *maintMsg) failShip() {
	m.ok = false
	close(m.done)
}

// clearMsg resets the local lock table under a quiesced engine
// (re-partitioning on a new field).
type clearMsg struct{ ack chan struct{} }

// dieMsg terminates the worker after the inbox drains to it.
type dieMsg struct{ ack chan struct{} }

// tickMsg triggers the waiter-timeout sweep.
type tickMsg struct{}

// partition is a DORA micro-engine: one goroutine owning one logical
// partition of one table, executing its action queue serially against a
// private lock table (paper §1.1). Since the partitioned access path it
// also owns the B+tree subtrees covering its key range: its index
// descents are latch-free, and everyone else's operations on those
// subtrees arrive here as applyMsgs.
type partition struct {
	eng    *Dora
	tbl    *catalog.Table
	worker int // global worker id; also the routing handle
	token  *btree.Owner
	in     *inbox
	locks  lockTable
	ses    *sm.Session

	// forward is non-nil after evacuation (merge): everything is
	// forwarded to the adopting partition. Only this worker's goroutine
	// touches it; fwd mirrors it atomically for cross-thread continuation
	// delivery (deliverHome walks the merge chain from owner threads).
	forward *partition
	fwd     atomic.Pointer[partition]
	// homeExec delivers continuations of operations this worker
	// suspended on back to its inbox (built once; handed to the btree
	// layer as the ContExec of every async ship this worker originates).
	homeExec btree.ContExec
	// adoptWait buffers messages until migrated state arrives (split).
	adoptWait bool
	pending   []msg
	// frame is the ship-cycle detector's per-goroutine state (debug
	// mode only; nil otherwise).
	frame *shipFrame

	// Executed counts actions run; Waited counts grant waits; Stale
	// counts re-routed messages (arrived after a range moved away).
	Executed metrics.Counter
	Waited   metrics.Counter
	Stale    metrics.Counter
	// Shipped counts blocking foreign access-path operations executed
	// here (parked-sender applyMsgs); ContShipped counts
	// continuation-passing ones (contMsgs); KontRun counts continuations
	// delivered to and run on this worker (completions of foreign
	// operations it suspended on).
	Shipped     metrics.Counter
	ContShipped metrics.Counter
	KontRun     metrics.Counter
	// OverlapExec counts actions this worker executed while at least one
	// of its earlier actions was suspended on an in-flight foreign
	// operation — the proof that continuation ships keep the sender
	// draining its inbox (structurally zero under blocking ships).
	OverlapExec metrics.Counter
	// HeldKeys mirrors the local lock table size for the monitor;
	// WaitingNow mirrors its parked-waiter count (congestion signal);
	// SuspendedNow counts this worker's actions currently suspended on
	// in-flight foreign operations.
	HeldKeys     metrics.Gauge
	WaitingNow   metrics.Gauge
	SuspendedNow metrics.Gauge
	// Lock-hierarchy accounting, mirrored from the (single-threaded)
	// lock table after each inbox batch: grant operations, coarse range
	// locks, escalations/de-escalations, and maintenance busy probes.
	LockAcquisitions metrics.Gauge
	RangeLocks       metrics.Gauge
	Escalations      metrics.Gauge
	Deescalations    metrics.Gauge
	MaintKeyProbes   metrics.Gauge
	MaintRangeProbes metrics.Gauge
	// ThreadSwitches counts OS-thread migrations observed at timeout
	// ticks (tid changed since the previous tick). Zero while the worker
	// is pinned (the default); the NoPinWorkers baseline shows what
	// pinning avoids.
	ThreadSwitches metrics.Counter
	lastTID        int64
}

func newPartition(e *Dora, tbl *catalog.Table, worker int, adoptWait bool) *partition {
	tok := btree.NewOwner()
	ses := e.sm.OwnedSession(worker, tok)
	if e.cfg.SharedAccessPath {
		// The E12 measurement baseline: no subtree claims, and a plain
		// session so no heap page is ever owner-stamped either — the
		// pre-PLP physical behaviour, exactly.
		ses = e.sm.Session(worker)
	}
	p := &partition{
		eng:       e,
		tbl:       tbl,
		worker:    worker,
		token:     tok,
		in:        newInbox(),
		locks:     newLockTable(&e.cfg),
		ses:       ses,
		adoptWait: adoptWait,
	}
	p.homeExec = p.deliverHome
	return p
}

// ownerExec is the hook installed into claimed subtrees: it ships fn to
// this worker's queue and blocks until the worker ran it. false means the
// worker retired (inbox closed) and the sender must re-resolve. In debug
// mode the ship-cycle detector vets the hop before it is enqueued and
// re-raises a cycle detected by a deeper hop (shipcheck.go).
func (p *partition) ownerExec() btree.OwnerExec {
	return func(fn func(tok *btree.Owner)) bool {
		m := &applyMsg{fn: fn, done: make(chan struct{})}
		if det := p.eng.shipDet; det != nil {
			m.path = det.extendPath(p.worker, true)
		}
		if !p.in.pushChecked(m) {
			return false
		}
		<-m.done
		if m.cyc != nil {
			panic(m.cyc)
		}
		return m.ok
	}
}

// loop is the worker body: batch-drain the inbox (one mutex round per
// batch), process serially. By default the goroutine is pinned to its
// OS thread for its whole life: a micro-engine's cache/NUMA locality is
// the point of thread-to-data, and the scheduler migrating it between
// threads (and with them, cores) forfeits it. Config.NoPinWorkers opts
// out (measurement baseline; ThreadSwitches then counts the migrations
// pinning would have avoided).
func (p *partition) loop() {
	defer p.eng.wg.Done()
	if !p.eng.cfg.NoPinWorkers {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	p.lastTID = osThreadID()
	if det := p.eng.shipDet; det != nil {
		p.frame = det.register(p.worker)
		defer det.unregister()
	}
	var buf []msg
	for {
		batch, ok := p.in.popAll(buf)
		if !ok {
			return
		}
		for i, m := range batch {
			if p.handle(m) {
				// Retiring mid-batch: don't strand the tail — forward it
				// (or fail shipped ops) exactly like queued leftovers.
				for _, rest := range batch[i+1:] {
					p.dispose(rest)
				}
				for _, rest := range p.in.closeAndDrain() {
					p.dispose(rest)
				}
				return
			}
		}
		p.mirrorLockStats()
		buf = batch
	}
}

// mirrorLockStats publishes the thread-private lock table's accounting
// through the partition's atomic gauges (monitor, E19).
func (p *partition) mirrorLockStats() {
	p.WaitingNow.Set(int64(p.locks.waitingCount()))
	p.HeldKeys.Set(int64(p.locks.heldKeys()))
	st := p.locks.snapshotStats()
	p.LockAcquisitions.Set(st.acquisitions)
	p.RangeLocks.Set(st.rangeLocks)
	p.Escalations.Set(st.escalations)
	p.Deescalations.Set(st.deescalations)
	p.MaintKeyProbes.Set(st.keyProbes)
	p.MaintRangeProbes.Set(st.rangeProbes)
}

// dispose routes a message this retiring worker will never process:
// forwarded when a successor exists, failed back to the sender when its
// sender is parked on the reply, dropped otherwise (parity with messages
// that used to rot in a dead worker's queue). Continuations are special:
// losing one strands a transaction's RVP, so with no live successor they
// run inline on this (the disposing) goroutine — the shutdown
// fall-through, where the access paths are back on the shared latched
// path.
//
// Parked-sender ships (applyMsg, maintMsg) must NEVER be forwarded: the
// merge successor can be the ship's own sender — a worker blocked on
// <-done inside its current action — and a forwarded ship then sits in
// the blocked sender's own inbox forever (self-deadlock, which then
// wedges the next split's adoption and the merge's evacuate ack).
// Failing the ship instead wakes the sender with ok=false; the
// ascendAs/runAt/ExecOnOwner loops re-resolve the subtree — already
// reassigned to the successor before forwarding mode starts — and retry
// there, or run locally if the sender itself adopted the range.
func (p *partition) dispose(m msg) {
	if km, isKont := m.(*kontMsg); isKont {
		if p.forward == nil || !p.forward.in.pushChecked(m) {
			km.k()
		}
		return
	}
	switch m.(type) {
	case *applyMsg, *maintMsg:
		m.(shipped).failShip()
		return
	}
	if sh, isShipped := m.(shipped); isShipped {
		if p.forward == nil || !p.forward.in.pushChecked(m) {
			sh.failShip()
		}
		return
	}
	if p.forward != nil {
		p.forward.in.push(m)
	}
}

// handle processes one message; it returns true when the worker must exit.
func (p *partition) handle(m msg) bool {
	// Forwarding mode (after merge evacuation): everything moves on.
	if p.forward != nil {
		if t, isDie := m.(*dieMsg); isDie {
			close(t.ack)
			return true
		}
		p.dispose(m)
		return false
	}
	// Adoption wait (split target): buffer until state arrives.
	if p.adoptWait {
		switch t := m.(type) {
		case *adoptMsg:
			p.adoptWait = false
			runnable := p.locks.adopt(t.locks)
			pend := p.pending
			p.pending = nil
			for _, am := range runnable {
				p.execute(am)
			}
			for _, bm := range pend {
				if p.handle(bm) {
					return true
				}
			}
		case *dieMsg:
			close(t.ack)
			return true
		default:
			p.pending = append(p.pending, m)
		}
		return false
	}

	switch t := m.(type) {
	case *actionMsg:
		p.handleAction(t)
	case *applyMsg:
		p.Shipped.Inc()
		t.cyc = p.runShipped(t.path, func() { t.fn(p.token) })
		t.ok = true
		close(t.done)
	case *maintMsg:
		t.cyc = p.runShipped(t.path, func() { t.fn(&OwnerCtx{p: p}) })
		t.ok = true
		close(t.done)
	case *contMsg:
		// Continuation ship: run the op, enqueue the continuation back.
		// A cycle error can still surface here in debug mode — a nested
		// BLOCKING hop inside fn targeting a parked worker aborts the op
		// midway. There is no parked sender to unwind it to, so fail
		// fast on this thread rather than deliver a half-executed op as
		// success.
		p.ContShipped.Inc()
		if !t.at.IsZero() {
			p.eng.cfg.Tracer.RecordSpan(trace.StageShip, p.worker, time.Since(t.at))
		}
		if cyc := p.runShipped(t.path, func() { t.fn(p.token) }); cyc != nil {
			panic(cyc)
		}
		t.deliver(true)
	case *maintContMsg:
		if cyc := p.runShipped(t.path, func() { t.fn(&OwnerCtx{p: p}) }); cyc != nil {
			panic(cyc)
		}
		t.deliver(true)
	case *kontMsg:
		// A foreign operation this worker suspended on completed: run the
		// continuation on this thread (it may resume an action body, ship
		// again, or report to an RVP).
		p.KontRun.Inc()
		if !t.at.IsZero() {
			p.eng.cfg.Tracer.RecordSpan(trace.StageKont, p.worker, time.Since(t.at))
		}
		t.k()
	case releaseMsg:
		runnable := p.locks.release(t.txn)
		p.HeldKeys.Set(int64(p.locks.heldKeys()))
		for _, am := range runnable {
			p.execute(am)
		}
	case *splitMsg:
		moved := p.locks.extractAbove(t.at)
		p.HeldKeys.Set(int64(p.locks.heldKeys()))
		// Heap hand-over: pages holding records of the moved interval
		// lose our exclusivity promise — the new owner's mutations will
		// run on ITS thread. Strip our stamps from them (here, on our
		// thread, so none of our latch-free reads are in flight); the
		// maintenance daemon re-converges the layout behind the split.
		p.unstampMoved(t.at, t.hi)
		// Access-path hand-over: every claimed index subtree range that
		// maps to the moved routing interval changes owner, on this
		// thread, so no latch-free descent of ours can be in flight.
		p.moveAccessPaths(t.at, t.hi, t.to)
		t.to.in.push(&adoptMsg{locks: moved})
	case *adoptMsg:
		// Merge adoption into a live partition.
		runnable := p.locks.adopt(t.locks)
		p.HeldKeys.Set(int64(p.locks.heldKeys()))
		for _, am := range runnable {
			p.execute(am)
		}
	case *evacuateMsg:
		moved := p.locks.extractAll()
		p.HeldKeys.Set(0)
		// The adopter takes our subtrees wholesale (no data movement)
		// — and with them our heap-page stamps: it inherits all our
		// ranges, so the exclusivity promise transfers intact.
		for _, ix := range p.tbl.Indexes() {
			if pt := ix.Partitioned(); pt != nil {
				pt.ReassignOwner(p.token, t.to.token, t.to.ownerExec(), p.eng.asyncHookFor(t.to))
			}
		}
		p.tbl.Heap.ReassignStamps(p.token, t.to.token)
		t.to.in.push(&adoptMsg{locks: moved})
		p.forward = t.to
		p.fwd.Store(t.to)
		close(t.ack)
	case *clearMsg:
		// The table is replaced (its key space changed meaning); fold its
		// cumulative accounting into the engine's retired totals first so
		// LockSnapshot never goes backward.
		p.eng.retiredLocks.fold(p.locks.snapshotStats())
		p.locks = newLockTable(&p.eng.cfg)
		p.mirrorLockStats()
		close(t.ack)
	case tickMsg:
		if tid := osThreadID(); tid != p.lastTID {
			if p.lastTID != 0 && tid != 0 {
				p.ThreadSwitches.Inc()
			}
			p.lastTID = tid
		}
		p.sweepTimeouts()
	case *dieMsg:
		close(t.ack)
		return true
	}
	return false
}

// unstampMoved strips this worker's heap-page stamps from every page
// holding a record of routing interval [at, hi] (found through the
// owned primary subtree, which still covers the interval at this
// point). Runs on the owning worker's thread, before the subtree
// hand-over.
func (p *partition) unstampMoved(at, hi int64) {
	pk := p.tbl.Primary
	rr := p.tbl.RouteFor(pk, p.tbl.PartitionField())
	if pk.Partitioned() == nil || rr == nil {
		return
	}
	keyLo, keyHi := rr(at, hi)
	var pids []page.ID
	seen := make(map[page.ID]bool)
	pk.Tree.AscendRangeAs(p.token, keyLo, keyHi, func(_ int64, v uint64) bool {
		pid := storage.UnpackRID(v).Page
		if !seen[pid] && p.tbl.Heap.StampOwner(pid) == p.token {
			seen[pid] = true
			pids = append(pids, pid)
		}
		return true
	})
	p.tbl.Heap.UnstampPages(p.token, pids)
}

// moveAccessPaths hands the subtree ranges for routing interval [at, hi]
// of every claimed index over to partition q.
func (p *partition) moveAccessPaths(at, hi int64, q *partition) {
	pf := p.tbl.PartitionField()
	for _, ix := range p.tbl.Indexes() {
		pt := ix.Partitioned()
		rr := p.tbl.RouteFor(ix, pf)
		if pt == nil || rr == nil {
			continue
		}
		keyLo, keyHi := rr(at, hi)
		pt.MoveRange(p.token, keyLo, keyHi, q.token, q.ownerExec(), p.eng.asyncHookFor(q))
	}
}

func (p *partition) handleAction(am *actionMsg) {
	// Stale routing: the range moved (split/merge raced the dispatch).
	// Send it to the current owner.
	if owner := p.eng.ownerOf(p.tbl, am.routeKey); owner != nil && owner != p {
		p.Stale.Inc()
		owner.in.push(am)
		return
	}
	if am.claim && am.run.failed() {
		return // aborted before the claim was processed: drop it
	}
	if p.locks.acquire(am) {
		p.HeldKeys.Set(int64(p.locks.heldKeys()))
		p.execute(am)
		return
	}
	p.Waited.Inc()
	p.locks.wait(am)
}

// execute runs a granted action and reports to its RVP. Granted claims
// have nothing to run: the lock is now held for the future action.
//
// In continuation mode the body receives an AsyncHost: it may suspend
// itself on a foreign operation, in which case the worker moves on
// (draining its inbox while the foreign op is in flight) and the
// action's resume continuation reports to the RVP instead.
func (p *partition) execute(am *actionMsg) {
	if am.claim {
		return
	}
	p.Executed.Inc()
	if am.run.failed() {
		// The transaction already aborted: skip the body, just report so
		// the RVP completes and the rollback can proceed.
		p.eng.report(am.rvp, nil)
		return
	}
	if p.SuspendedNow.Load() > 0 {
		p.OverlapExec.Inc()
	}
	// Traced transactions: the span from dispatch to here is inbox queue
	// wait (plus any local lock wait); the body that follows is exec. A
	// suspending body's exec span covers the portion before Run returns —
	// the foreign round trip shows up as its suspend span instead.
	tt := am.run.txn.Trace
	var execAt time.Time
	if tt != nil {
		execAt = time.Now()
		tt.Span(trace.StageQueueWait, p.worker, am.at, execAt.Sub(am.at))
	}
	env := &xct.Env{Txn: am.run.txn, Ses: p.ses}
	if !p.eng.cfg.BlockingShips {
		host := &actionHost{p: p, am: am}
		env.Async = host
		err := am.act.Run(env)
		if tt != nil {
			tt.Span(trace.StageExec, p.worker, execAt, time.Since(execAt))
		}
		if host.suspended {
			return // the resume continuation owns the RVP report
		}
		p.eng.report(am.rvp, err)
		return
	}
	err := am.act.Run(env)
	if tt != nil {
		tt.Span(trace.StageExec, p.worker, execAt, time.Since(execAt))
	}
	p.eng.report(am.rvp, err)
}

// sweepTimeouts aborts waiters stuck beyond the engine's local timeout —
// the safety net for cross-partition waits the canonical enqueue order
// cannot serialize (multi-phase conflicts). The lock table walks its
// parked waiters; this judge decides who stays.
func (p *partition) sweepTimeouts() {
	limit := p.eng.cfg.LocalTimeout
	if limit <= 0 {
		return
	}
	now := time.Now()
	p.locks.sweepWaiters(func(w *actionMsg) bool {
		if w.claim {
			// Claims never time out (the claimed action's own wait does);
			// drop them once their transaction has failed.
			return !w.run.failed()
		}
		if now.Sub(w.at) > limit && !w.run.failed() {
			p.eng.Timeouts.Inc()
			p.eng.report(w.rvp, ErrLocalTimeout)
			return false
		}
		// Already-failed runs: flush them out too, reporting.
		if w.run.failed() {
			p.eng.report(w.rvp, nil)
			return false
		}
		return true
	})
}

// queueLen reports the inbox length (load-balancing signal).
func (p *partition) queueLen() int { return p.in.length() }
