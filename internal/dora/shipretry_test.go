package dora

import (
	"testing"
	"time"
)

// TestShipRetryPauseAndAggregation: the engine-side fail-back pacing
// mirrors the btree discipline (yield-only early rounds, bounded sleeps
// after), and ShipSnapshot folds the engine counters together with
// every partitioned index's own retry stats.
func TestShipRetryPauseAndAggregation(t *testing.T) {
	s, _, _, e := rig2(t, 50, 2, Config{})

	for tries := 0; tries < 4; tries++ {
		e.shipRetryPause(tries)
	}
	if r, w := e.shipRetries.Load(), e.shipRetryWaits.Load(); r != 4 || w != 0 {
		t.Fatalf("yield-only rounds: retries=%d waits=%d", r, w)
	}
	start := time.Now()
	e.shipRetryPause(30) // deep attempt: sleep, but capped at 1ms
	if el := time.Since(start); el > 50*time.Millisecond {
		t.Fatalf("capped backoff slept %v", el)
	}
	if r, w := e.shipRetries.Load(), e.shipRetryWaits.Load(); r != 5 || w != 1 {
		t.Fatalf("after deep attempt: retries=%d waits=%d", r, w)
	}

	// The snapshot view = engine counters + per-index tree stats.
	var treeR, treeW int64
	for _, tbl := range s.Cat.Tables() {
		for _, ix := range tbl.Indexes() {
			if pt := ix.Partitioned(); pt != nil {
				r, w := pt.ShipRetryStats()
				treeR += r
				treeW += w
			}
		}
	}
	ss := e.ShipSnapshot()
	if ss.ShipRetries != 5+treeR || ss.ShipRetryWaits != 1+treeW {
		t.Fatalf("ShipSnapshot retries=%d waits=%d, want %d/%d",
			ss.ShipRetries, ss.ShipRetryWaits, 5+treeR, 1+treeW)
	}
}
