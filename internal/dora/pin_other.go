//go:build !linux

package dora

// osThreadID has no portable implementation off Linux; worker pinning
// still works (runtime.LockOSThread is portable) but migration counting
// is disabled.
func osThreadID() int64 { return 0 }
