package dora

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"dora/internal/tx"
	"dora/internal/xct"
)

// ErrLocalTimeout reports an action that waited too long in a partition's
// local lock table (cross-partition conflict the canonical enqueue order
// could not serialize); the transaction aborts and may be retried.
var ErrLocalTimeout = errors.New("dora: local lock wait timeout")

// flowRun is one in-flight transaction: the flow graph being executed,
// its storage transaction, and completion plumbing. Actions of the same
// run execute on several partition workers concurrently, so all mutable
// state is synchronized.
type flowRun struct {
	eng  *Dora
	flow *xct.Flow
	txn  *tx.Txn
	// finish delivers the final verdict to the client exactly once (the
	// commit pipeline or the rollback continuation calls it). ExecAsync
	// installs it; Exec's is a channel send.
	finish func(error)

	mu     sync.Mutex
	err    error
	tables map[uint32]struct{}

	// commitqAt is when the last action's report pushed the run onto the
	// commit queue (set only for traced transactions; the committer turns
	// it into the commit-queue-wait span). Written by the last reporter,
	// read by the committer — the channel hand-off orders the accesses.
	commitqAt time.Time

	failedFlag atomic.Bool
}

func newFlowRun(e *Dora, flow *xct.Flow, txn *tx.Txn, finish func(error)) *flowRun {
	return &flowRun{
		eng:    e,
		flow:   flow,
		txn:    txn,
		finish: finish,
		tables: make(map[uint32]struct{}, 4),
	}
}

// fail records the first error; later errors are dropped.
func (r *flowRun) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
	r.failedFlag.Store(true)
}

// failed reports whether the run has aborted.
func (r *flowRun) failed() bool { return r.failedFlag.Load() }

// firstErr returns the recorded error.
func (r *flowRun) firstErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// addTable records that the run dispatched work to a table (its
// partitions receive the release broadcast at the end).
func (r *flowRun) addTable(id uint32) {
	r.mu.Lock()
	r.tables[id] = struct{}{}
	r.mu.Unlock()
}

// tableIDs snapshots the touched tables.
func (r *flowRun) tableIDs() []uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]uint32, 0, len(r.tables))
	for id := range r.tables {
		out = append(out, id)
	}
	return out
}

// rvp is a rendezvous point: the shared countdown between the actions of
// one phase (paper §1.1: "initialized to the number of threads that have
// to report to them... The last thread to report on a rendezvous point
// decides whether the corresponding transaction should commit or abort,
// or whether a new set of actions needs to be submitted").
type rvp struct {
	run       *flowRun
	phase     int
	remaining atomic.Int32
}

func newRVP(run *flowRun, phase, count int) *rvp {
	r := &rvp{run: run, phase: phase}
	r.remaining.Store(int32(count))
	return r
}
