// Package dora implements the paper's contribution: the data-oriented
// transaction execution engine. Work is assigned thread-to-data: the
// database is decomposed into logical partitions by per-table routing
// rules; each partition is owned by a micro-engine (worker goroutine)
// that executes the actions routed to it serially against a private lock
// table, bypassing the centralized lock manager entirely. Rendezvous
// points coordinate the phases of each transaction's flow graph, and the
// last action to report decides commit or abort.
//
// Partitions are purely logical (key ranges in routing tables), so load
// imbalance is fixed by moving range boundaries — no data moves, and no
// distributed transactions appear (paper §1.1).
//
// Execution is asynchronous end to end: cross-partition operations ship
// with continuations instead of parking their senders (cont.go), action
// bodies suspend on foreign logical ops while their worker drains its
// inbox, and phases advance purely by RVP countdowns (ExecAsync) — no
// goroutine ever waits on another partition's work, which makes
// arbitrary action bodies deadlock-safe by construction.
// Config.BlockingShips restores the parked-sender protocol as a
// measurement baseline.
//
// Each partition's private lock table is hierarchical (hierlock.go): a
// partition root, 256-key granules, and key nodes, with the classic
// IS/IX/S/SIX/X multigranularity modes. Point actions take intents down
// the path and a key lock at the leaf; range scans take one coarse S
// (or X) per covered granule — root-level when the range spans too many
// — instead of expanding key by key; maintenance gates clear whole
// ranges with one coarse probe. A transaction that accumulates
// Config.EscalateAt key locks under one granule escalates them to a
// single granule hold, and a later conflicting request de-escalates it
// back to key granularity (re-materializing the holder's keys), with an
// adaptive backoff that suppresses re-escalation after a conflict.
// Because the table is thread-private, all of this is latch-free: no
// lock-manager mutex exists at any granularity. Config.FlatLocks keeps
// the per-key flat table as the measurement baseline (experiment E19).
package dora

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dora/internal/btree"
	"dora/internal/buffer"
	"dora/internal/catalog"
	"dora/internal/dora/router"
	"dora/internal/metrics"
	"dora/internal/sm"
	"dora/internal/trace"
	"dora/internal/xct"
)

// Config tunes the engine.
type Config struct {
	// PartitionsPerTable is the initial number of partitions each table
	// gets (default 4).
	PartitionsPerTable int
	// Domains gives the routing-value domain [lo, hi] per table name.
	// Tables without an entry default to [0, 1<<31].
	Domains map[string][2]int64
	// Committers is the size of the commit-service pool that runs log
	// forces and rollbacks off the partition workers (default 4).
	Committers int
	// LocalTimeout bounds waits in partition lock tables (default 2s).
	LocalTimeout time.Duration
	// TickEvery is the timeout-sweep period (default 250ms).
	TickEvery time.Duration
	// DisableClaims turns off the up-front lock claims for later-phase
	// actions (the deadlock-avoidance protocol). Only the ablation
	// experiment uses this: without claims, multi-phase workloads
	// deadlock across partitions and fall back to timeout aborts.
	DisableClaims bool
	// SharedAccessPath keeps every index on the shared latched B+tree
	// path instead of claiming per-partition subtrees for the workers.
	// Only the access-path experiment (E12) uses this: it is the
	// measurement baseline that shows how much node latching the
	// partitioned access path removes.
	SharedAccessPath bool
	// DebugShipCheck enables the ship-graph cycle detector: every
	// owner-thread ship — blocking or continuation — carries its chain
	// of traversed workers, and a ship targeting a worker already in the
	// chain is reported (shipcheck.go). The report is a fail-fast
	// diagnostic panic when that worker is parked on the chain (a
	// blocking hop: the cycle would deadlock) and a counted non-fatal
	// diagnosis when it is not (continuation hops cannot wedge). Debug
	// mode: it costs a goroutine-id lookup per ship.
	DebugShipCheck bool
	// BlockingShips selects the legacy parked-sender ship protocol:
	// every cross-partition operation blocks its sender for the full
	// round trip, action bodies never receive an AsyncHost, and the
	// committers roll back synchronously. The measurement baseline for
	// experiment E14; continuation-passing ships are the default.
	BlockingShips bool
	// LatchedOwnerWrites forces owner mutations of stamped heap pages
	// back onto the exclusive frame-latch path (the pre-copy-on-write
	// protocol). The measurement baseline for experiment E15; latch-free
	// owner writes are the default. Page cleaning still runs through the
	// snapshot ship either way.
	LatchedOwnerWrites bool
	// Tracer, when non-nil, samples transactions for end-to-end latency
	// attribution: admission, inbox queue wait, action execution, ship
	// hops, and the commit pipeline all record spans against it. Give
	// the same tracer to sm.Options.Spans so the log stages join in.
	Tracer *trace.Tracer
	// FlatLocks selects the flat per-key local lock tables instead of
	// the multigranularity hierarchy (hierlock.go). Only the lock-
	// hierarchy ablation (E19) uses this: it is the baseline that shows
	// what coarse range locks, one-intent maintenance gating and lock
	// escalation save.
	FlatLocks bool
	// EscalateAt is the per-(transaction, granule) key-lock count that
	// triggers lock escalation in the hierarchical tables (default 16;
	// negative disables escalation).
	EscalateAt int
	// NoPinWorkers leaves partition workers on the Go scheduler's
	// default placement instead of pinning each to its OS thread. The
	// baseline for the thread-migration counters: unpinned workers'
	// ThreadSwitches show the migrations pinning avoids.
	NoPinWorkers bool
}

func (c *Config) fill() {
	if c.PartitionsPerTable <= 0 {
		c.PartitionsPerTable = 4
	}
	if c.Committers <= 0 {
		c.Committers = 4
	}
	if c.LocalTimeout <= 0 {
		c.LocalTimeout = 2 * time.Second
	}
	if c.TickEvery <= 0 {
		c.TickEvery = 250 * time.Millisecond
	}
}

// Dora is the data-oriented execution engine.
type Dora struct {
	sm  *sm.SM
	cfg Config

	// execGate: Exec holds it shared for a transaction's lifetime;
	// Repartition (partition-field change) takes it exclusively to
	// quiesce the engine.
	execGate sync.RWMutex

	// topoMu guards the partition topology (tableParts, routers, nextID).
	topoMu     sync.RWMutex
	routers    map[uint32]*router.Table
	tableParts map[uint32][]*partition // live partitions per table
	byWorker   map[int]*partition
	nextWorker int

	coordSes *sm.Session
	commitq  chan *flowRun
	wg       sync.WaitGroup
	commitWG sync.WaitGroup
	stopTick chan struct{}
	closed   bool

	// shipDet is the debug-mode ship-cycle detector (nil when off).
	shipDet *shipDetector
	// cleaner is the engine-owned buffer-pool flush daemon (see New).
	cleaner *buffer.Cleaner
	// rebalanceHook notifies the maintenance daemon of topology changes.
	hookMu        sync.Mutex
	rebalanceHook func(RebalanceEvent)

	// Committed/Aborted count outcomes; Unaligned counts accesses whose
	// key field was not the partitioning field (experiment E7 signal);
	// Timeouts counts local lock-wait aborts.
	Committed metrics.Counter
	Aborted   metrics.Counter
	Timeouts  metrics.Counter
	// AsyncResolves counts unaligned-action resolver probes dispatched in
	// continuation-passing form (the dispatcher suspended instead of
	// blocking on the probe's cross-partition ship).
	AsyncResolves metrics.Counter

	// retiredShips accumulates the cumulative ship counters of workers
	// merged away, so ShipSnapshot's engine-wide totals never go
	// backward when a partition retires.
	retiredShips struct {
		blocking, cont, konts, overlap metrics.Counter
	}
	// shipRetries / shipRetryWaits count ExecOnOwner fail-back
	// re-resolutions and the subset that slept under backoff (the
	// access-path loops keep their own; ShipSnapshot sums both).
	shipRetries    metrics.Counter
	shipRetryWaits metrics.Counter
	// retiredLocks does the same for the lock-table accounting (workers
	// merged away, tables replaced by Repartition).
	retiredLocks retiredLockStats

	unalignedMu sync.Mutex
	unaligned   map[uint32]map[string]int64 // table -> probed field -> count
	aligned     map[uint32]int64
}

// New builds a DORA engine over every table currently in the storage
// manager's catalog and starts its worker threads.
func New(s *sm.SM, cfg Config) *Dora {
	cfg.fill()
	e := &Dora{
		sm:         s,
		cfg:        cfg,
		routers:    make(map[uint32]*router.Table),
		tableParts: make(map[uint32][]*partition),
		byWorker:   make(map[int]*partition),
		coordSes:   s.Session(-1),
		commitq:    make(chan *flowRun, 1024),
		stopTick:   make(chan struct{}),
		unaligned:  make(map[uint32]map[string]int64),
		aligned:    make(map[uint32]int64),
	}
	if cfg.DebugShipCheck {
		e.shipDet = newShipDetector()
	}
	// Page cleaning for owner-stamped heap pages: the buffer pool's
	// write-back ships snapshot requests through our workers' inboxes
	// instead of latching frames whose owners mutate latch-free. The
	// engine also owns a flush daemon: eviction refuses to clean dirty
	// stamped frames itself (only the owner's thread may copy them), so
	// SOMETHING must harden them in the background or a pool smaller
	// than the stamped hot set could run out of victims. Embedders may
	// run additional cleaners (doramon, E15); they compose.
	s.Pool.SetSnapshotter(e.snapshotPage)
	if !cfg.BlockingShips {
		// Pipelined checkpoint ships: FlushAll fans one async copy request
		// per stamped page out through the owners' inboxes and hardens the
		// replies from a completion queue, instead of parking on each owner
		// round-trip in turn. The blocking-ships baseline keeps the legacy
		// one-at-a-time protocol everywhere.
		s.Pool.SetSnapshotterAsync(e.snapshotPageAsync)
	}
	e.cleaner = buffer.NewCleaner(s.Pool, buffer.CleanerConfig{Interval: 10 * time.Millisecond})
	e.cleaner.Start()
	for _, tbl := range s.Cat.Tables() {
		if cfg.LatchedOwnerWrites {
			tbl.Heap.SetLatchedOwnerWrites(true)
		}
		lo, hi := int64(0), int64(1)<<31
		if d, ok := cfg.Domains[tbl.Name]; ok {
			lo, hi = d[0], d[1]
		}
		var handles []int
		for i := 0; i < cfg.PartitionsPerTable; i++ {
			p := newPartition(e, tbl, e.nextWorker, false)
			e.byWorker[p.worker] = p
			e.tableParts[tbl.ID] = append(e.tableParts[tbl.ID], p)
			handles = append(handles, p.worker)
			e.nextWorker++
			e.wg.Add(1)
			go p.loop()
		}
		e.routers[tbl.ID] = router.NewUniform(tbl.PartitionField(), lo, hi, handles)
		if !cfg.SharedAccessPath {
			e.claimAccessPaths(tbl)
		}
	}
	for i := 0; i < cfg.Committers; i++ {
		e.commitWG.Add(1)
		go e.committer()
	}
	go e.ticker()
	return e
}

// claimAccessPaths hands each partitionable index of tbl to its workers:
// every routing range's mapped key interval becomes a B+tree subtree
// exclusively owned by the range's partition worker, whose descents are
// then latch-free (the PLP/MRBTree access path). Runs at construction,
// before any worker accepts actions, so the trees are quiesced. Indexes
// without a route mapping for the current partitioning field stay on the
// shared latched path.
func (e *Dora) claimAccessPaths(tbl *catalog.Table) {
	e.topoMu.RLock()
	rt := e.routers[tbl.ID]
	var ranges []router.Range
	if rt != nil {
		ranges = rt.Ranges()
	}
	type tgt struct {
		tok   *btree.Owner
		exec  btree.OwnerExec
		async btree.OwnerExecAsync
	}
	targets := make([]tgt, len(ranges))
	for i, r := range ranges {
		if p := e.byWorker[r.Part]; p != nil {
			targets[i] = tgt{p.token, p.ownerExec(), e.asyncHookFor(p)}
		}
	}
	e.topoMu.RUnlock()
	pf := tbl.PartitionField()
	for _, ix := range tbl.Indexes() {
		pt := ix.Partitioned()
		rr := tbl.RouteFor(ix, pf)
		if pt == nil || rr == nil {
			continue
		}
		claims := make([]btree.ClaimRange, 0, len(ranges))
		for i, r := range ranges {
			if targets[i].tok == nil {
				continue
			}
			keyLo, keyHi := rr(r.Lo, r.Hi)
			claims = append(claims, btree.ClaimRange{
				Lo: keyLo, Hi: keyHi, Owner: targets[i].tok,
				Exec: targets[i].exec, ExecAsync: targets[i].async,
			})
		}
		pt.Claim(claims)
	}
}

// releaseAccessPaths returns every partitioned index of tbl to the shared
// latched path (engine shutdown; re-partitioning on a new field).
func (e *Dora) releaseAccessPaths(tbl *catalog.Table) {
	for _, ix := range tbl.Indexes() {
		if pt := ix.Partitioned(); pt != nil {
			pt.Release()
		}
	}
}

// Name implements engine.Engine.
func (e *Dora) Name() string { return "dora" }

// Exec implements engine.Engine: decompose the flow into actions, route
// phase 0, and wait for the final rendezvous point's verdict.
func (e *Dora) Exec(worker int, flow *xct.Flow) error {
	ch := make(chan error, 1)
	e.ExecAsync(worker, flow, func(err error) { ch <- err })
	return <-ch
}

// ExecAsync runs the flow without blocking the caller: phase 0's actions
// are dispatched fire-and-forget, every later phase (and the commit
// decision) is triggered by an RVP countdown reaching zero, and done
// fires exactly once — from the commit pipeline — with the transaction's
// verdict. Nothing in the flow's lifetime parks a goroutine on another
// partition's work: this is the paper's asynchronous action model end to
// end, with Exec as the thin synchronous wrapper clients use.
func (e *Dora) ExecAsync(worker int, flow *xct.Flow, done func(error)) {
	if len(flow.Phases) == 0 {
		done(nil)
		return
	}
	// The gate is held shared for the whole transaction and released by
	// whichever goroutine completes it (sync.RWMutex permits that). A
	// panic out of the dispatch must release it too — once, even if a
	// partially dispatched run still completes later — or the next
	// writer (Repartition, Close) would wedge the whole engine.
	var t0 time.Time
	if e.cfg.Tracer.Enabled() {
		t0 = time.Now()
	}
	e.execGate.RLock()
	released := new(atomic.Bool)
	release := func() {
		if released.CompareAndSwap(false, true) {
			e.execGate.RUnlock()
		}
	}
	defer func() {
		if r := recover(); r != nil {
			release()
			panic(r)
		}
	}()
	txn := e.sm.Begin()
	tt := e.cfg.Tracer.Begin(txn.ID)
	if tt != nil {
		tt.SetStart(t0)
		tt.Span(trace.StageAdmission, worker, t0, time.Since(t0))
		txn.Trace = tt
	}
	run := newFlowRun(e, flow, txn, func(err error) {
		release()
		tt.Finish(err)
		done(err)
	})
	e.dispatchPhase(run, 0)
}

// dispatchPhase routes every action of a phase and enqueues them
// atomically in canonical partition order — DORA's deadlock-avoidance
// protocol: conflicting actions of different transactions always appear
// in every queue in the same relative order, so local waits form no
// cycles (single-phase conflicts).
func (e *Dora) dispatchPhase(run *flowRun, phase int) {
	actions := run.flow.Phases[phase].Actions
	r := newRVP(run, phase, len(actions))
	type target struct {
		p *partition
		m *actionMsg
	}
	claims := make([]target, 0, len(actions))
	now := time.Now()
	// With phase 0 we also enqueue lock *claims* for every later-phase
	// action whose key is static and aligned, so the transaction's whole
	// (static) lock set enters all queues in one atomic canonical batch —
	// the paper's deadlock-avoidance protocol.
	if phase == 0 && len(run.flow.Phases) > 1 && !e.cfg.DisableClaims {
		for _, ph := range run.flow.Phases[1:] {
			for _, a := range ph.Actions {
				if a.LateKey {
					continue
				}
				tbl := e.sm.Cat.Table(a.Table)
				if tbl == nil || a.KeyField != tbl.PartitionField() {
					continue
				}
				run.addTable(tbl.ID)
				p := e.ownerOf(tbl, a.Key)
				claims = append(claims, target{p, &actionMsg{
					act: a, run: run, routeKey: a.Key, at: now, claim: true,
				}})
			}
		}
	}
	// Route every action. Unaligned actions with an async resolver probe
	// their secondary index in continuation-passing form: the dispatch
	// suspends (pending countdown) instead of parking this thread on a
	// cross-partition ship, and the last resolution to land enqueues the
	// phase. Aligned actions and sync-only resolvers keep the inline path.
	rks := make([]int64, len(actions))
	skip := make([]bool, len(actions))
	finish := func() {
		targets := claims
		failed := 0
		for i, a := range actions {
			if skip[i] {
				failed++
				continue
			}
			tbl := e.sm.Cat.Table(a.Table)
			p := e.ownerOf(tbl, rks[i])
			targets = append(targets, target{p, &actionMsg{act: a, run: run, rvp: r, routeKey: rks[i], at: now}})
		}
		// Canonical order: ascending worker id, then key.
		sort.Slice(targets, func(i, j int) bool {
			if targets[i].p.worker != targets[j].p.worker {
				return targets[i].p.worker < targets[j].p.worker
			}
			return targets[i].m.routeKey < targets[j].m.routeKey
		})
		// Atomic multi-queue enqueue: lock all distinct inboxes in order.
		var locked []*inbox
		for _, t := range targets {
			ib := t.p.in
			if len(locked) == 0 || locked[len(locked)-1] != ib {
				ib.lockForEnqueue()
				locked = append(locked, ib)
			}
			ib.appendLocked(t.m)
		}
		for _, ib := range locked {
			ib.unlockAfterEnqueue()
		}
		// Account for actions that never dispatched (resolve failures).
		for i := 0; i < failed; i++ {
			e.report(r, nil) // error already recorded on the run
		}
	}
	// pending starts at 1 for the routing loop itself, so finish cannot
	// fire before every action has been examined.
	pending := new(atomic.Int32)
	pending.Store(1)
	done := func() {
		if pending.Add(-1) == 0 {
			finish()
		}
	}
	for i, a := range actions {
		tbl := e.sm.Cat.Table(a.Table)
		if tbl == nil {
			run.fail(fmt.Errorf("dora: unknown table %q", a.Table))
			skip[i] = true
			continue
		}
		run.addTable(tbl.ID)
		pf := tbl.PartitionField()
		if a.KeyField == pf {
			e.noteAligned(tbl.ID)
			rks[i] = a.Key
			continue
		}
		e.noteUnaligned(tbl.ID, a.KeyField)
		if a.ResolveAsync != nil && !e.cfg.BlockingShips {
			i := i
			pending.Add(1)
			e.AsyncResolves.Inc()
			a.ResolveAsync(&xct.Env{Txn: run.txn, Ses: e.coordSes}, pf, func(v int64, err error) {
				if err != nil {
					run.fail(err)
					skip[i] = true
				} else {
					rks[i] = v
				}
				done()
			})
			continue
		}
		if a.Resolve == nil {
			run.fail(fmt.Errorf("dora: action on %s keyed by %s needs a resolver", a.Table, a.KeyField))
			skip[i] = true
			continue
		}
		v, err := a.Resolve(&xct.Env{Txn: run.txn, Ses: e.coordSes}, pf)
		if err != nil {
			run.fail(err)
			skip[i] = true
			continue
		}
		rks[i] = v
	}
	done()
}

// report is called once per action; the last reporter advances the flow.
func (e *Dora) report(r *rvp, err error) {
	if err != nil {
		r.run.fail(err)
	}
	if r.remaining.Add(-1) != 0 {
		return
	}
	run := r.run
	if run.failed() || r.phase+1 >= len(run.flow.Phases) {
		if run.txn.Trace != nil {
			run.commitqAt = time.Now()
		}
		e.commitq <- run
		return
	}
	e.dispatchPhase(run, r.phase+1)
}

// committer is the commit service: it takes finished runs off the
// partition workers, appends their commit records (or rolls them back),
// and broadcasts the local-lock release to every partition of every
// touched table. Commits are pipelined: the committer does not wait for
// the log sync — the log's flush daemon completes the transaction (and
// unblocks its client) once the commit record hardens, while the locks
// are already released at commit-LSN assignment (early lock release; safe
// because the log flushes in LSN order, so no dependent transaction can
// become durable first).
func (e *Dora) committer() {
	defer e.commitWG.Done()
	for run := range e.commitq {
		tt := run.txn.Trace
		if tt != nil && !run.commitqAt.IsZero() {
			tt.Span(trace.StageCommitQueue, -1, run.commitqAt, time.Since(run.commitqAt))
		}
		if ferr := run.firstErr(); ferr != nil {
			// Rollback is safe off-partition: the run still holds its
			// local locks, so no other transaction can touch its data
			// logically — and physically, the committer's compensations
			// ship to the owning partition workers through the
			// partitioned trees' owner executors (thread-to-data is
			// preserved under rollback). With continuation ships the
			// whole undo chain rides the async path: the committer fires
			// it and moves to the next run; the final continuation
			// releases the locks and reports the abort.
			run := run
			ferr := ferr
			fin := func(rbErr error) {
				if rbErr != nil {
					panic(fmt.Sprintf("dora: rollback of txn %d failed: %v", run.txn.ID, rbErr))
				}
				e.Aborted.Inc()
				e.broadcastRelease(run)
				run.finish(ferr)
			}
			if e.cfg.BlockingShips {
				fin(e.sm.Rollback(run.txn))
			} else {
				e.sm.RollbackAsync(nil, run.txn, nil, fin)
			}
			continue
		}
		e.sm.CommitAsync(run.txn, func(err error) {
			if err != nil {
				// Log-device failure after the locks were released: the
				// log is dead, so physical rollback is pointless — report
				// the abort to the client.
				e.Aborted.Inc()
			} else {
				e.Committed.Inc()
			}
			run.finish(err)
		})
		var relAt time.Time
		if tt != nil {
			relAt = time.Now()
		}
		e.broadcastRelease(run)
		if tt != nil {
			tt.Span(trace.StageLockRelease, -1, relAt, time.Since(relAt))
		}
	}
}

// broadcastRelease tells every live partition of the touched tables to
// drop the transaction's local locks.
func (e *Dora) broadcastRelease(run *flowRun) {
	ids := run.tableIDs()
	e.topoMu.RLock()
	var parts []*partition
	for _, id := range ids {
		parts = append(parts, e.tableParts[id]...)
	}
	e.topoMu.RUnlock()
	for _, p := range parts {
		p.in.push(releaseMsg{txn: run.txn.ID})
	}
}

// ownerOf returns the partition currently owning routing value v of tbl.
func (e *Dora) ownerOf(tbl *catalog.Table, v int64) *partition {
	e.topoMu.RLock()
	rt := e.routers[tbl.ID]
	var p *partition
	if rt != nil {
		p = e.byWorker[rt.Route(v)]
	}
	e.topoMu.RUnlock()
	return p
}

// Router exposes the routing table for a table (monitor, balancer, tests).
func (e *Dora) Router(name string) *router.Table {
	tbl := e.sm.Cat.Table(name)
	if tbl == nil {
		return nil
	}
	e.topoMu.RLock()
	defer e.topoMu.RUnlock()
	return e.routers[tbl.ID]
}

// ticker drives timeout sweeps in every partition.
func (e *Dora) ticker() {
	t := time.NewTicker(e.cfg.TickEvery)
	defer t.Stop()
	for {
		select {
		case <-e.stopTick:
			return
		case <-t.C:
			e.topoMu.RLock()
			var parts []*partition
			for _, ps := range e.tableParts {
				parts = append(parts, ps...)
			}
			e.topoMu.RUnlock()
			for _, p := range parts {
				p.in.push(tickMsg{})
			}
		}
	}
}

func (e *Dora) noteUnaligned(table uint32, field string) {
	e.unalignedMu.Lock()
	m := e.unaligned[table]
	if m == nil {
		m = make(map[string]int64)
		e.unaligned[table] = m
	}
	m[field]++
	e.unalignedMu.Unlock()
}

func (e *Dora) noteAligned(table uint32) {
	e.unalignedMu.Lock()
	e.aligned[table]++
	e.unalignedMu.Unlock()
}

// AlignmentStats reports, per table, aligned dispatches and the per-field
// unaligned dispatch counts since the last reset. The alignment advisor
// (experiment E7) consumes this.
func (e *Dora) AlignmentStats(reset bool) (aligned map[uint32]int64, unaligned map[uint32]map[string]int64) {
	e.unalignedMu.Lock()
	defer e.unalignedMu.Unlock()
	aligned = make(map[uint32]int64, len(e.aligned))
	for k, v := range e.aligned {
		aligned[k] = v
	}
	unaligned = make(map[uint32]map[string]int64, len(e.unaligned))
	for k, m := range e.unaligned {
		cp := make(map[string]int64, len(m))
		for f, v := range m {
			cp[f] = v
		}
		unaligned[k] = cp
	}
	if reset {
		e.aligned = make(map[uint32]int64)
		e.unaligned = make(map[uint32]map[string]int64)
	}
	return aligned, unaligned
}

// Close stops all workers. Pending transactions must have finished.
func (e *Dora) Close() error {
	// Stop the flush daemon BEFORE taking the gate: an in-flight tick may
	// be parked inside snapshotPage holding the gate shared (waiting on a
	// worker that is still alive at this point); taking the gate first
	// and then waiting for the tick would deadlock.
	if e.cleaner != nil {
		_ = e.cleaner.Close()
	}
	e.execGate.Lock()
	defer e.execGate.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	close(e.stopTick)
	close(e.commitq)
	e.commitWG.Wait()
	e.topoMu.Lock()
	for _, p := range e.byWorker {
		p.in.close()
	}
	e.topoMu.Unlock()
	e.wg.Wait()
	// Workers are gone: hand the access paths back to the shared latched
	//-path so later engines (or direct sessions) can use the trees.
	// Foreign operations parked in the ship-retry loop fall through here.
	// Heap-page stamps go with them: without workers there is no owner
	// thread to honour the exclusivity promise.
	for _, tbl := range e.sm.Cat.Tables() {
		e.releaseAccessPaths(tbl)
		tbl.Heap.ReleaseStamps()
	}
	return nil
}
