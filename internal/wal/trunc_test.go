package wal

import (
	"path/filepath"
	"testing"
)

// fill appends and forces n records, returning each record's LSN.
func fill(t *testing.T, l *Log, n int) []LSN {
	t.Helper()
	lsns := make([]LSN, n)
	for i := 0; i < n; i++ {
		lsns[i] = l.Append(&Record{Kind: KUpdate, TxnID: uint64(i + 1), Redo: []byte("payload")})
	}
	if err := l.FlushAll(); err != nil {
		t.Fatal(err)
	}
	return lsns
}

func TestTruncatePrefix(t *testing.T) {
	store := NewMemStore()
	l, err := New(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	lsns := fill(t, l, 20)
	origin := lsns[10]
	if err := l.Truncate(origin); err != nil {
		t.Fatal(err)
	}
	// The store shrank but the stream's LSN space is unchanged: scanning
	// yields the suffix at its original LSNs.
	var got []LSN
	if err := l.Scan(func(r *Record) error { got = append(got, r.LSN); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != origin {
		t.Fatalf("retained %d records from %d, want 10 from %d", len(got), got[0], origin)
	}
	raw, _ := store.Contents()
	o2, _, err := StreamOrigin(raw)
	if err != nil || o2 != origin {
		t.Fatalf("store origin = %d (%v), want %d", o2, err, origin)
	}
	// Appends continue in the same LSN space after truncation.
	next := l.Append(&Record{Kind: KCommit, TxnID: 99})
	if next < lsns[19] {
		t.Fatalf("post-truncation LSN %d regressed", next)
	}
	if err := l.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Truncation is idempotent and refuses to pass the durable end.
	if err := l.Truncate(origin); err != nil {
		t.Fatal(err)
	}
	if err := l.Truncate(l.Durable() + 100); err == nil {
		t.Fatal("truncation beyond the durable end accepted")
	}
}

func TestTruncatedStoreReopens(t *testing.T) {
	store := NewMemStore()
	l, err := New(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	lsns := fill(t, l, 12)
	if err := l.Truncate(lsns[6]); err != nil {
		t.Fatal(err)
	}
	end := l.Durable()
	// Reopen over the truncated stream: LSNs continue where they left off.
	l2, err := New(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Next() != end {
		t.Fatalf("reopened next = %d, want %d", l2.Next(), end)
	}
	n := 0
	if err := l2.Scan(func(r *Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("reopened scan saw %d records, want 6", n)
	}
}

func TestTruncateTail(t *testing.T) {
	store := NewMemStore()
	l, err := New(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	lsns := fill(t, l, 10)
	cut := lsns[7] // keep records 0..6
	if err := TruncateTail(store, cut); err != nil {
		t.Fatal(err)
	}
	raw, _ := store.Contents()
	origin, body, err := StreamOrigin(raw)
	if err != nil {
		t.Fatal(err)
	}
	if origin+LSN(len(body)) != cut {
		t.Fatalf("stream end = %d, want %d", origin+LSN(len(body)), cut)
	}
	n := 0
	if err := ScanBytes(raw, func(r *Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("retained %d records, want 7", n)
	}
	// Tail truncation composes with prefix truncation (a rejoining
	// ex-primary may hold a store truncated on both ends).
	if err := Truncate(store, lsns[3]); err != nil {
		t.Fatal(err)
	}
	raw, _ = store.Contents()
	n = 0
	if err := ScanBytes(raw, func(r *Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("doubly-truncated scan saw %d records, want 4", n)
	}
	// A cut at or beyond the stream end is a no-op; one below the origin
	// is an error (that history is gone already).
	if err := TruncateTail(store, l.Durable()+5); err != nil {
		t.Fatalf("no-op tail truncation: %v", err)
	}
	if err := TruncateTail(store, lsns[1]); err == nil {
		t.Fatal("tail truncation below the origin accepted")
	}
}

func TestTruncateFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(fs, nil)
	if err != nil {
		t.Fatal(err)
	}
	lsns := fill(t, l, 16)
	if err := l.Truncate(lsns[8]); err != nil {
		t.Fatal(err)
	}
	// The rewrite must survive the file being reopened.
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	raw, err := fs2.Contents()
	if err != nil {
		t.Fatal(err)
	}
	origin, _, err := StreamOrigin(raw)
	if err != nil || origin != lsns[8] {
		t.Fatalf("file origin = %d (%v), want %d", origin, err, lsns[8])
	}
	n := 0
	if err := ScanBytes(raw, func(r *Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("file scan saw %d records, want 8", n)
	}
}

func TestDecodeStreamStopsAtTear(t *testing.T) {
	store := NewMemStore()
	l, err := New(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, 5)
	raw, _ := store.Contents()
	origin, body, err := StreamOrigin(raw)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	consumed, err := DecodeStream(origin, body[:len(body)-3], func(r *Record) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("decoded %d whole records, want 4", n)
	}
	if consumed >= len(body)-3 {
		t.Fatalf("consumed %d includes the torn record", consumed)
	}
	// A stream whose offsets contradict its origin is rejected outright.
	if _, err := DecodeStream(origin+1, body, func(r *Record) error { return nil }); err == nil {
		t.Fatal("mis-based stream accepted")
	}
}
