// Package wal implements the write-ahead log: an append-only stream of
// physiological log records with offset-based LSNs, a group-commit force
// path, and a scanner for ARIES-style recovery (analysis / redo / undo is
// driven by internal/sm on top of this package).
//
// The append path of this package's Log serializes on a single mutex —
// the log-buffer critical section that every update of every transaction
// must enter in both the conventional and the DORA engine. It is
// instrumented so experiment E4 can report it separately from lock-manager
// serialization. The clog subpackage removes that serialization with a
// consolidation-array append path; both implement Manager and produce the
// same record stream.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"dora/internal/metrics"
	"dora/internal/page"
)

// LSN is a log sequence number: the byte offset of the record in the log
// stream. 0 is never a valid LSN (the stream starts with a file header).
type LSN = uint64

// Kind enumerates log-record types.
type Kind uint8

const (
	// KUpdate logs an in-place record update (before and after images).
	KUpdate Kind = iota + 1
	// KInsert logs a record insertion (after image only).
	KInsert
	// KDelete logs a record deletion (before image only).
	KDelete
	// KCommit marks transaction commit.
	KCommit
	// KAbort marks the start of rollback.
	KAbort
	// KEnd marks transaction completion (after commit or full rollback).
	KEnd
	// KCLR is a compensation log record written during rollback; its
	// UndoNext points at the next record of the transaction to undo.
	KCLR
	// KCheckpoint carries a fuzzy checkpoint (unused fields otherwise).
	KCheckpoint
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KUpdate:
		return "update"
	case KInsert:
		return "insert"
	case KDelete:
		return "delete"
	case KCommit:
		return "commit"
	case KAbort:
		return "abort"
	case KEnd:
		return "end"
	case KCLR:
		return "clr"
	case KCheckpoint:
		return "checkpoint"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Record is one log record. Table/Page/Slot/Key locate the change; Redo
// and Undo carry after/before images of the record payload.
type Record struct {
	LSN     LSN
	PrevLSN LSN // previous record of the same transaction
	TxnID   uint64
	Kind    Kind
	// Sub qualifies KCLR records with the physical operation the
	// compensation performs (KInsert, KUpdate or KDelete); zero otherwise.
	Sub      Kind
	Table    uint32
	Page     page.ID
	Slot     uint16
	Key      int64
	UndoNext LSN // CLR only: next LSN of this txn to undo
	Redo     []byte
	Undo     []byte
}

const fileHeader = "DORALOG1"

// HeaderSize is the length of the file header that precedes the first
// record; the first valid LSN equals HeaderSize.
const HeaderSize = len(fileHeader)

// truncHeader is the alternate file header of a prefix-truncated stream;
// it is followed by the 8-byte LSN (= original stream offset) of the first
// retained record, so LSNs survive truncation unchanged.
const truncHeader = "DORATRNC"

// TruncHeaderSize is the length of the truncated-stream header: magic plus
// the origin LSN.
const TruncHeaderSize = len(truncHeader) + 8

// ErrCorrupt reports a checksum or framing failure while scanning.
var ErrCorrupt = errors.New("wal: corrupt log")

// ExtentSink receives hardened log extents: base is the LSN of the first
// byte of data, and data holds one or more whole framed records that have
// just become durable. The flush path invokes the sink serially, in LSN
// order, with no gaps between successive extents; ownership of data
// transfers to the sink. Replication (internal/repl) hangs its shipper
// here.
type ExtentSink func(base LSN, data []byte)

// ExtentSource is implemented by log managers that can stream hardened
// extents to a sink (log shipping).
type ExtentSource interface {
	// SetExtentSink installs fn to observe every subsequently hardened
	// extent; nil detaches. The sink runs on the flush path, so it must
	// only hand the extent off (queue it), never block on downstream I/O.
	SetExtentSink(fn ExtentSink)
}

// Truncator is implemented by log managers whose backing store can drop
// its hardened prefix (see Truncate); internal/sm's trimmer drives it.
type Truncator interface {
	Truncate(origin LSN) error
}

// Manager is the log-manager interface the storage manager runs on. Two
// implementations exist: Log (this package; single-mutex append path) and
// clog.Log (consolidation-array append path with flush pipelining). Both
// produce the same on-disk record stream, so recovery's scanner and every
// log-inspection tool work over either.
type Manager interface {
	// Append assigns an LSN to rec, serializes it into the log buffer,
	// and returns the LSN. The record is not durable until forced.
	Append(rec *Record) LSN
	// Force blocks until every record with LSN <= lsn is durable.
	Force(lsn LSN) error
	// FlushAll forces everything appended so far.
	FlushAll() error
	// Durable returns the LSN up to which (exclusive) the log is durable.
	Durable() LSN
	// Next returns the LSN the next Append will receive.
	Next() LSN
	// Scan decodes every record in the stream in order.
	Scan(fn func(*Record) error) error
	// Stats snapshots the manager's operation counters.
	Stats() Stats
	// Close flushes outstanding records and stops any background worker.
	// It does not close the underlying Store.
	Close() error
}

// AsyncForcer is implemented by log managers that can complete
// transactions asynchronously: fn runs once every record with LSN <= lsn
// is durable (or the log has failed). The storage manager uses it for
// flush pipelining — commit does not block the worker on the sync.
type AsyncForcer interface {
	ForceAsync(lsn LSN, fn func(error))
}

// Stats is a point-in-time copy of a log manager's operation counters.
type Stats struct {
	// Appends counts records appended; Forces counts durability requests
	// (Force and ForceAsync).
	Appends int64
	Forces  int64
	// Syncs counts device syncs actually issued; GroupedCommits counts
	// forces satisfied without one (the group-commit win).
	Syncs          int64
	GroupedCommits int64
	// Groups counts entries into the serialized buffer-reservation step;
	// Consolidated counts appends that piggybacked on another thread's
	// reservation (always zero for the single-mutex log).
	Groups       int64
	Consolidated int64
}

// Store is the durable byte sink behind the log.
type Store interface {
	// Write appends b at the end of the store.
	Write(b []byte) error
	// Sync makes all written bytes durable.
	Sync() error
	// Contents returns the full stream for recovery scans.
	Contents() ([]byte, error)
	// Close releases resources.
	Close() error
}

// Rewriter is implemented by stores whose entire content can be replaced
// atomically — the primitive behind prefix truncation (bounding log
// growth) and tail truncation (discarding a divergent tail on rejoin
// after failover). Both provided stores implement it.
type Rewriter interface {
	Rewrite(raw []byte) error
}

// Truncate drops every record below origin from store, replacing the
// header with a truncated-stream header that records origin. origin must
// be a record boundary within the durable stream; retained records keep
// their LSNs (LSN = original stream offset survives because the origin is
// recorded in the header). Truncating at or before the current origin is
// a no-op.
func Truncate(store Store, origin LSN) error {
	raw, err := store.Contents()
	if err != nil {
		return err
	}
	cur, body, err := StreamOrigin(raw)
	if err != nil {
		return err
	}
	if origin <= cur {
		return nil
	}
	if origin > cur+LSN(len(body)) {
		return fmt.Errorf("wal: truncate origin %d beyond stream end %d", origin, cur+LSN(len(body)))
	}
	rw, ok := store.(Rewriter)
	if !ok {
		return fmt.Errorf("wal: store %T cannot rewrite", store)
	}
	img := make([]byte, 0, TruncHeaderSize+len(body)-int(origin-cur))
	img = append(img, truncHeader...)
	img = binary.LittleEndian.AppendUint64(img, origin)
	img = append(img, body[origin-cur:]...)
	return rw.Rewrite(img)
}

// TruncateTail discards every stream byte at or beyond end, keeping the
// header form. A rejoining ex-primary truncates its log at the promotion
// point this way, discarding the unacked tail the new primary never saw,
// before re-opening the store as a replica.
func TruncateTail(store Store, end LSN) error {
	raw, err := store.Contents()
	if err != nil {
		return err
	}
	cur, body, err := StreamOrigin(raw)
	if err != nil {
		return err
	}
	if end < cur {
		return fmt.Errorf("wal: tail-truncate point %d below stream origin %d", end, cur)
	}
	if end >= cur+LSN(len(body)) {
		return nil
	}
	rw, ok := store.(Rewriter)
	if !ok {
		return fmt.Errorf("wal: store %T cannot rewrite", store)
	}
	return rw.Rewrite(raw[:len(raw)-len(body)+int(end-cur)])
}

// MemStore is an in-memory Store for tests and I/O-free benchmarks. Its
// CrashCopy method returns only the synced prefix, letting tests simulate
// the loss of unsynced log data at a crash.
type MemStore struct {
	mu     sync.Mutex
	buf    []byte
	synced int
}

// CrashCopy returns a new MemStore containing only the bytes that were
// durable (synced) — what a real disk would hold after a crash.
func (s *MemStore) CrashCopy() *MemStore {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := &MemStore{buf: append([]byte(nil), s.buf[:s.synced]...)}
	out.synced = len(out.buf)
	return out
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Write implements Store.
func (s *MemStore) Write(b []byte) error {
	s.mu.Lock()
	s.buf = append(s.buf, b...)
	s.mu.Unlock()
	return nil
}

// Sync implements Store.
func (s *MemStore) Sync() error {
	s.mu.Lock()
	s.synced = len(s.buf)
	s.mu.Unlock()
	return nil
}

// Contents implements Store.
func (s *MemStore) Contents() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]byte, len(s.buf))
	copy(out, s.buf)
	return out, nil
}

// Rewrite implements Rewriter: the new image replaces the content and is
// immediately durable.
func (s *MemStore) Rewrite(raw []byte) error {
	s.mu.Lock()
	s.buf = append(s.buf[:0], raw...)
	s.synced = len(s.buf)
	s.mu.Unlock()
	return nil
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }

// FileStore is a file-backed Store.
type FileStore struct {
	f *os.File
}

// OpenFileStore opens (creating if needed) the log file at path and
// positions writes at its end.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &FileStore{f: f}, nil
}

// Write implements Store.
func (s *FileStore) Write(b []byte) error {
	_, err := s.f.Write(b)
	return err
}

// Sync implements Store.
func (s *FileStore) Sync() error { return s.f.Sync() }

// Contents implements Store.
func (s *FileStore) Contents() ([]byte, error) { return os.ReadFile(s.f.Name()) }

// Rewrite implements Rewriter by writing the new image to a temp file,
// syncing it, renaming it over the log, and syncing the parent directory
// so the rename itself is durable — without that, a crash after Rewrite
// returns could resurrect the pre-rewrite file, re-exposing exactly the
// bytes the caller truncated away (for TruncateTail on a rejoining
// ex-primary, the divergent tail the failover safety argument discards).
func (s *FileStore) Rewrite(raw []byte) error {
	path := s.f.Name()
	tmp := path + ".rewrite"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return err
	}
	nf, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.f.Close()
	s.f = nf
	return nil
}

// syncDir fsyncs a directory, making a rename within it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

// Close implements Store.
func (s *FileStore) Close() error { return s.f.Close() }

// Log is the log manager.
type Log struct {
	mu      sync.Mutex // append critical section
	buf     []byte     // appended but not yet handed to store
	nextLSN LSN        // offset the next record will get
	err     error      // sticky store failure: a dead log stays dead (mu)

	flushMu sync.Mutex // serializes Force (group commit)
	durable LSN        // all records below this offset are durable (atomic via mu)

	sink atomic.Pointer[ExtentSink] // hardened-extent observer (log shipping)

	store Store
	cs    *metrics.CriticalSectionStats

	// Appends and Forces count operations; GroupedCommits counts Force
	// calls satisfied by an earlier flush (the group-commit win); Syncs
	// counts device syncs actually issued.
	Appends        metrics.Counter
	Forces         metrics.Counter
	GroupedCommits metrics.Counter
	Syncs          metrics.Counter
}

// InitStore writes the file header into an empty store (and syncs it), or
// validates the header of a non-empty one, returning the LSN after the
// existing content — where the next append goes. Shared by both log
// managers so they open each other's streams.
func InitStore(store Store) (LSN, error) {
	existing, err := store.Contents()
	if err != nil {
		return 0, err
	}
	if len(existing) == 0 {
		if err := store.Write([]byte(fileHeader)); err != nil {
			return 0, err
		}
		if err := store.Sync(); err != nil {
			return 0, err
		}
		return LSN(HeaderSize), nil
	}
	origin, body, err := StreamOrigin(existing)
	if err != nil {
		return 0, err
	}
	return origin + LSN(len(body)), nil
}

// StreamOrigin parses a raw log image's header, returning the LSN of the
// first byte of body. Full streams ("DORALOG1") begin at HeaderSize;
// prefix-truncated streams ("DORATRNC" + origin) begin wherever
// truncation left them.
func StreamOrigin(raw []byte) (LSN, []byte, error) {
	if len(raw) >= HeaderSize && string(raw[:HeaderSize]) == fileHeader {
		return LSN(HeaderSize), raw[HeaderSize:], nil
	}
	if len(raw) >= TruncHeaderSize && string(raw[:len(truncHeader)]) == truncHeader {
		origin := binary.LittleEndian.Uint64(raw[len(truncHeader):])
		return origin, raw[TruncHeaderSize:], nil
	}
	return 0, nil, fmt.Errorf("%w: bad header", ErrCorrupt)
}

// New creates a log manager over store. If the store is empty the file
// header is written; otherwise appends continue after existing content.
func New(store Store, cs *metrics.CriticalSectionStats) (*Log, error) {
	next, err := InitStore(store)
	if err != nil {
		return nil, err
	}
	l := &Log{store: store, cs: cs, nextLSN: next}
	l.durable = l.nextLSN
	return l, nil
}

// Append assigns an LSN to rec, serializes it into the log buffer, and
// returns the LSN. The record is not durable until Force.
func (l *Log) Append(rec *Record) LSN {
	b := encode(rec)
	l.mu.Lock()
	if l.cs != nil {
		l.cs.Log.Inc()
	}
	rec.LSN = l.nextLSN
	// Patch the LSN into the already-encoded frame.
	binary.LittleEndian.PutUint64(b[8:], rec.LSN)
	// Recompute checksum over payload (LSN is inside the payload).
	binary.LittleEndian.PutUint32(b[4:], crc32.ChecksumIEEE(b[8:]))
	l.buf = append(l.buf, b...)
	l.nextLSN += LSN(len(b))
	l.Appends.Inc()
	l.mu.Unlock()
	return rec.LSN
}

// Durable returns the LSN up to which (exclusive) the log is durable.
func (l *Log) Durable() LSN {
	l.mu.Lock()
	d := l.durable
	l.mu.Unlock()
	return d
}

// Next returns the LSN the next Append will receive.
func (l *Log) Next() LSN {
	l.mu.Lock()
	n := l.nextLSN
	l.mu.Unlock()
	return n
}

// Force blocks until every record with LSN <= lsn is durable. Concurrent
// forcers are batched: the first flush covers all earlier appends, and
// later callers return without touching the store (group commit). A store
// failure is sticky: the durability horizon freezes and every later Force
// reports the failure, so an engine that told its client "aborted" on a
// commit error can never see a later sync quietly harden that commit.
func (l *Log) Force(lsn LSN) error {
	l.Forces.Inc()
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	if l.durable > lsn {
		l.mu.Unlock()
		l.GroupedCommits.Inc()
		return nil
	}
	l.mu.Unlock()

	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	if l.durable > lsn {
		l.mu.Unlock()
		l.GroupedCommits.Inc()
		return nil
	}
	pend := l.buf
	l.buf = nil
	upTo := l.nextLSN
	l.mu.Unlock()

	err := error(nil)
	if len(pend) > 0 {
		err = l.store.Write(pend)
	}
	if err == nil {
		err = l.store.Sync()
	}
	if err != nil {
		l.mu.Lock()
		if l.err == nil {
			l.err = err
		}
		l.mu.Unlock()
		return err
	}
	l.Syncs.Inc()
	if sp := l.sink.Load(); sp != nil && len(pend) > 0 {
		// pend was detached from the buffer above; ownership transfers to
		// the sink. Still under flushMu, so extents arrive in LSN order.
		(*sp)(upTo-LSN(len(pend)), pend)
	}
	l.mu.Lock()
	l.durable = upTo
	l.mu.Unlock()
	return nil
}

// SetExtentSink implements ExtentSource.
func (l *Log) SetExtentSink(fn ExtentSink) {
	if fn == nil {
		l.sink.Store(nil)
		return
	}
	l.sink.Store(&fn)
}

// Truncate implements Truncator: it drops records below origin from the
// backing store, serialized with Force so the rewrite never interleaves
// with a flush. origin must not exceed the durable horizon.
func (l *Log) Truncate(origin LSN) error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	d := l.durable
	l.mu.Unlock()
	if origin > d {
		return fmt.Errorf("wal: truncate origin %d above durable horizon %d", origin, d)
	}
	return Truncate(l.store, origin)
}

// Stats implements Manager. Every append reserves buffer space by itself,
// so Groups mirrors Appends and nothing consolidates.
func (l *Log) Stats() Stats {
	a := l.Appends.Load()
	return Stats{
		Appends:        a,
		Forces:         l.Forces.Load(),
		Syncs:          l.Syncs.Load(),
		GroupedCommits: l.GroupedCommits.Load(),
		Groups:         a,
	}
}

// Close implements Manager: it flushes outstanding records. The single-
// mutex log has no background worker to stop.
func (l *Log) Close() error { return l.FlushAll() }

// FlushAll forces everything appended so far.
func (l *Log) FlushAll() error {
	l.mu.Lock()
	target := l.nextLSN
	l.mu.Unlock()
	if target == 0 {
		return nil
	}
	return l.Force(target - 1)
}

// Scan decodes every record in the durable+buffered stream in order,
// invoking fn for each. Used by recovery and by log-inspection tools.
func (l *Log) Scan(fn func(*Record) error) error {
	if err := l.FlushAll(); err != nil {
		return err
	}
	raw, err := l.store.Contents()
	if err != nil {
		return err
	}
	return ScanBytes(raw, fn)
}

// ScanBytes decodes a raw log image (including either header form).
func ScanBytes(raw []byte, fn func(*Record) error) error {
	origin, body, err := StreamOrigin(raw)
	if err != nil {
		return err
	}
	_, err = DecodeStream(origin, body, fn)
	return err
}

// DecodeStream decodes framed records from body, whose first byte sits at
// LSN origin in the log stream, invoking fn for each whole record. It
// stops at the first incomplete or checksum-failing frame — a torn tail
// after a crash, or, on a replication link, bytes still in flight — and
// returns how many body bytes complete records consumed, so a receiver
// can append exactly the decodable prefix and keep the rest pending. A
// record that decodes but disagrees with its stream offset is hard
// corruption, as is an error from fn.
func DecodeStream(origin LSN, body []byte, fn func(*Record) error) (int, error) {
	off := 0
	for off < len(body) {
		if off+8 > len(body) {
			break // torn frame header
		}
		ln := int(binary.LittleEndian.Uint32(body[off:]))
		crc := binary.LittleEndian.Uint32(body[off+4:])
		if ln < 8 || off+ln > len(body) {
			break // torn record
		}
		payload := body[off+8 : off+ln]
		if crc32.ChecksumIEEE(payload) != crc {
			break // torn / corrupt tail ends the scan
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return off, err
		}
		if rec.LSN != origin+LSN(off) {
			return off, fmt.Errorf("%w: LSN %d at offset %d", ErrCorrupt, rec.LSN, origin+LSN(off))
		}
		if err := fn(rec); err != nil {
			return off, err
		}
		off += ln
	}
	return off, nil
}

// PhysicalKind returns the heap operation r performs — KInsert, KUpdate
// or KDelete, resolving a KCLR to the compensating operation carried in
// Sub — or 0 for records with no physical page effect (commit, abort,
// end, checkpoint). Recovery redo, replica replay and the partition-
// parallel redo dispatcher all classify records with it.
func PhysicalKind(r *Record) Kind {
	kind := r.Kind
	if kind == KCLR {
		kind = r.Sub
	}
	switch kind {
	case KInsert, KUpdate, KDelete:
		return kind
	}
	return 0
}

// PageKey returns the heap page r physically touches — the shard key of
// partition-parallel redo. Records with the same page key must apply in
// LSN order (the page-LSN idempotence invariant and the slot-allocation
// determinism of RedoInsert both ride per-page ordering); records with
// different keys touch disjoint pages and redo concurrently. ok is false
// for records with no physical effect — transaction resolution and
// checkpoints — which stay on the redo dispatcher.
func PageKey(r *Record) (page.ID, bool) {
	if PhysicalKind(r) == 0 {
		return 0, false
	}
	return r.Page, true
}

// EncodedSize returns the framed size of r in bytes — the number of LSN
// units the record occupies in the stream.
func EncodedSize(r *Record) int {
	return 8 + // frame header
		8 + 8 + 8 + 1 + 1 + 4 + 4 + 2 + 8 + 8 + // fixed payload
		4 + len(r.Redo) + 4 + len(r.Undo)
}

// encode frames rec: u32 total length, u32 crc, then payload beginning
// with the (to-be-patched) LSN. The checksum is left for Append to fill
// after it patches the LSN.
func encode(r *Record) []byte {
	b := make([]byte, EncodedSize(r))
	encodeInto(b, r, false)
	return b
}

// EncodeInto serializes r — including its current LSN and the payload
// checksum — into b, which must be exactly EncodedSize(r) bytes. Both log
// managers use it, so their streams are byte-identical for equal records.
func EncodeInto(b []byte, r *Record) { encodeInto(b, r, true) }

func encodeInto(b []byte, r *Record, withCRC bool) {
	n := len(b)
	binary.LittleEndian.PutUint32(b[0:], uint32(n))
	w := 8
	binary.LittleEndian.PutUint64(b[w:], r.LSN)
	w += 8
	binary.LittleEndian.PutUint64(b[w:], r.PrevLSN)
	w += 8
	binary.LittleEndian.PutUint64(b[w:], r.TxnID)
	w += 8
	b[w] = byte(r.Kind)
	w++
	b[w] = byte(r.Sub)
	w++
	binary.LittleEndian.PutUint32(b[w:], r.Table)
	w += 4
	binary.LittleEndian.PutUint32(b[w:], uint32(r.Page))
	w += 4
	binary.LittleEndian.PutUint16(b[w:], r.Slot)
	w += 2
	binary.LittleEndian.PutUint64(b[w:], uint64(r.Key))
	w += 8
	binary.LittleEndian.PutUint64(b[w:], r.UndoNext)
	w += 8
	binary.LittleEndian.PutUint32(b[w:], uint32(len(r.Redo)))
	w += 4
	copy(b[w:], r.Redo)
	w += len(r.Redo)
	binary.LittleEndian.PutUint32(b[w:], uint32(len(r.Undo)))
	w += 4
	copy(b[w:], r.Undo)
	if withCRC {
		binary.LittleEndian.PutUint32(b[4:], crc32.ChecksumIEEE(b[8:]))
	}
}

func decodePayload(p []byte) (*Record, error) {
	const fixed = 8 + 8 + 8 + 1 + 1 + 4 + 4 + 2 + 8 + 8
	if len(p) < fixed {
		return nil, fmt.Errorf("%w: short payload", ErrCorrupt)
	}
	r := &Record{}
	w := 0
	r.LSN = binary.LittleEndian.Uint64(p[w:])
	w += 8
	r.PrevLSN = binary.LittleEndian.Uint64(p[w:])
	w += 8
	r.TxnID = binary.LittleEndian.Uint64(p[w:])
	w += 8
	r.Kind = Kind(p[w])
	w++
	r.Sub = Kind(p[w])
	w++
	r.Table = binary.LittleEndian.Uint32(p[w:])
	w += 4
	r.Page = page.ID(binary.LittleEndian.Uint32(p[w:]))
	w += 4
	r.Slot = binary.LittleEndian.Uint16(p[w:])
	w += 2
	r.Key = int64(binary.LittleEndian.Uint64(p[w:]))
	w += 8
	r.UndoNext = binary.LittleEndian.Uint64(p[w:])
	w += 8
	rl := int(binary.LittleEndian.Uint32(p[w:]))
	w += 4
	if w+rl+4 > len(p) {
		return nil, fmt.Errorf("%w: bad redo length", ErrCorrupt)
	}
	if rl > 0 {
		r.Redo = append([]byte(nil), p[w:w+rl]...)
	}
	w += rl
	ul := int(binary.LittleEndian.Uint32(p[w:]))
	w += 4
	if w+ul > len(p) {
		return nil, fmt.Errorf("%w: bad undo length", ErrCorrupt)
	}
	if ul > 0 {
		r.Undo = append([]byte(nil), p[w:w+ul]...)
	}
	return r, nil
}
