package wal

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
)

func mk(t *testing.T) *Log {
	t.Helper()
	l, err := New(NewMemStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestAppendAssignsMonotonicLSNs(t *testing.T) {
	l := mk(t)
	var prev LSN
	for i := 0; i < 100; i++ {
		lsn := l.Append(&Record{Kind: KUpdate, TxnID: 1, Redo: []byte{byte(i)}})
		if lsn <= prev {
			t.Fatalf("LSN %d not > %d", lsn, prev)
		}
		prev = lsn
	}
}

func TestScanRoundTrip(t *testing.T) {
	l := mk(t)
	want := []*Record{
		{Kind: KInsert, TxnID: 1, Table: 3, Page: 7, Slot: 2, Key: 99, Redo: []byte("new")},
		{Kind: KUpdate, TxnID: 1, Table: 3, Page: 7, Slot: 2, Key: 99, Redo: []byte("after"), Undo: []byte("before")},
		{Kind: KCLR, Sub: KUpdate, TxnID: 2, UndoNext: 5, Redo: []byte("comp")},
		{Kind: KCommit, TxnID: 1},
		{Kind: KEnd, TxnID: 1},
	}
	for _, r := range want {
		r.PrevLSN = 11
		l.Append(r)
	}
	var got []*Record
	if err := l.Scan(func(r *Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Kind != w.Kind || g.Sub != w.Sub || g.TxnID != w.TxnID ||
			g.Table != w.Table || g.Page != w.Page || g.Slot != w.Slot ||
			g.Key != w.Key || g.UndoNext != w.UndoNext || g.PrevLSN != 11 {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, g, w)
		}
		if string(g.Redo) != string(w.Redo) || string(g.Undo) != string(w.Undo) {
			t.Fatalf("record %d images mismatch", i)
		}
		if g.LSN != w.LSN {
			t.Fatalf("record %d LSN %d, appended as %d", i, g.LSN, w.LSN)
		}
	}
}

func TestForceAdvancesDurable(t *testing.T) {
	l := mk(t)
	lsn := l.Append(&Record{Kind: KCommit, TxnID: 1})
	if l.Durable() > lsn {
		t.Fatal("record durable before Force")
	}
	if err := l.Force(lsn); err != nil {
		t.Fatal(err)
	}
	if l.Durable() <= lsn {
		t.Fatalf("Durable = %d, want > %d", l.Durable(), lsn)
	}
}

func TestGroupCommitBatches(t *testing.T) {
	l := mk(t)
	const n = 32
	lsns := make([]LSN, n)
	for i := range lsns {
		lsns[i] = l.Append(&Record{Kind: KCommit, TxnID: uint64(i)})
	}
	var wg sync.WaitGroup
	for _, lsn := range lsns {
		wg.Add(1)
		go func(lsn LSN) {
			defer wg.Done()
			if err := l.Force(lsn); err != nil {
				t.Error(err)
			}
		}(lsn)
	}
	wg.Wait()
	if l.GroupedCommits.Load() == 0 {
		t.Fatal("expected at least one grouped commit among 32 concurrent forces")
	}
}

func TestCrashCopyDropsUnsynced(t *testing.T) {
	store := NewMemStore()
	l, err := New(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := l.Append(&Record{Kind: KInsert, TxnID: 1, Redo: []byte("durable")})
	if err := l.Force(a); err != nil {
		t.Fatal(err)
	}
	l.Append(&Record{Kind: KInsert, TxnID: 2, Redo: []byte("lost")})
	// Note: record 2 is appended but never forced; and never written.

	crashed := store.CrashCopy()
	l2, err := New(crashed, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []*Record
	if err := l2.Scan(func(r *Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Redo) != "durable" {
		t.Fatalf("after crash: %d records", len(got))
	}
}

func TestTornTailIgnored(t *testing.T) {
	l := mk(t)
	l.Append(&Record{Kind: KInsert, TxnID: 1, Redo: []byte("ok")})
	if err := l.FlushAll(); err != nil {
		t.Fatal(err)
	}
	raw, _ := l.store.Contents()
	// Simulate a torn write: a half-record at the tail.
	raw = append(raw, 0xFF, 0x00, 0x00, 0x00, 0x01, 0x02)
	n := 0
	if err := ScanBytes(raw, func(r *Record) error { n++; return nil }); err != nil {
		t.Fatalf("ScanBytes on torn log: %v", err)
	}
	if n != 1 {
		t.Fatalf("scanned %d, want 1", n)
	}
}

func TestCorruptRecordRejectedMidStream(t *testing.T) {
	l := mk(t)
	var lsns []LSN
	for i := 0; i < 10; i++ {
		lsns = append(lsns, l.Append(&Record{Kind: KUpdate, TxnID: 1, Key: int64(i), Redo: []byte("payload")}))
	}
	if err := l.FlushAll(); err != nil {
		t.Fatal(err)
	}
	raw, _ := l.store.Contents()
	// Corrupt a payload byte of the 6th record: its CRC check must fail
	// and the scan must stop before delivering it.
	mid := int(lsns[5])
	raw[mid+16] ^= 0xA5
	n := 0
	if err := ScanBytes(raw, func(r *Record) error {
		if r.LSN >= lsns[5] {
			t.Fatalf("corrupt record %d delivered", r.LSN)
		}
		n++
		return nil
	}); err != nil {
		t.Fatalf("scan over corrupted log: %v", err)
	}
	if n != 5 {
		t.Fatalf("delivered %d records before corruption, want 5", n)
	}
}

func TestReopenContinuesLSNs(t *testing.T) {
	store := NewMemStore()
	l, _ := New(store, nil)
	lsn1 := l.Append(&Record{Kind: KCommit, TxnID: 1})
	if err := l.FlushAll(); err != nil {
		t.Fatal(err)
	}
	l2, err := New(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	lsn2 := l2.Append(&Record{Kind: KCommit, TxnID: 2})
	if lsn2 <= lsn1 {
		t.Fatalf("reopened log reused LSN space: %d <= %d", lsn2, lsn1)
	}
	n := 0
	if err := l2.Scan(func(r *Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("scanned %d, want 2", n)
	}
}

// failSyncStore fails Sync on demand, simulating a dying log device.
type failSyncStore struct {
	*MemStore
	fail bool
}

func (s *failSyncStore) Sync() error {
	if s.fail {
		return errors.New("device failure")
	}
	return s.MemStore.Sync()
}

func TestForceFailureIsSticky(t *testing.T) {
	store := &failSyncStore{MemStore: NewMemStore()}
	l, err := New(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := l.Durable()
	store.fail = true
	lsn := l.Append(&Record{Kind: KCommit, TxnID: 1})
	if err := l.Force(lsn); err == nil {
		t.Fatal("force over failing store must error")
	}
	// The device recovers, but the log must stay dead: a commit reported
	// aborted on the first failure must never be hardened by a later
	// transaction's force.
	store.fail = false
	lsn2 := l.Append(&Record{Kind: KCommit, TxnID: 2})
	if err := l.Force(lsn2); err == nil {
		t.Fatal("force after sticky failure must keep erroring")
	}
	if d := l.Durable(); d != before {
		t.Fatalf("durable advanced from %d to %d over a dead log", before, d)
	}
}

func TestFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	store, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	lsn := l.Append(&Record{Kind: KInsert, TxnID: 9, Key: 1234, Redo: []byte("persist")})
	if err := l.Force(lsn); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	l2, err := New(store2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got *Record
	if err := l2.Scan(func(r *Record) error { got = r; return nil }); err != nil {
		t.Fatal(err)
	}
	if got == nil || got.TxnID != 9 || got.Key != 1234 || string(got.Redo) != "persist" {
		t.Fatalf("file round trip: %+v", got)
	}
}

func TestConcurrentAppendScan(t *testing.T) {
	l := mk(t)
	var wg sync.WaitGroup
	const writers, per = 8, 500
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Append(&Record{Kind: KUpdate, TxnID: uint64(w + 1), Key: int64(i)})
			}
		}(w)
	}
	wg.Wait()
	n := 0
	seen := map[LSN]bool{}
	if err := l.Scan(func(r *Record) error {
		if seen[r.LSN] {
			t.Fatalf("duplicate LSN %d", r.LSN)
		}
		seen[r.LSN] = true
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != writers*per {
		t.Fatalf("scanned %d, want %d", n, writers*per)
	}
}
