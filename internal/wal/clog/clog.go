// Package clog is the scalable log manager: a consolidation-array WAL
// append path with decoupled buffer fill and flush pipelining, in the
// style of Aether (Johnson et al., VLDB 2010) — the same research group's
// follow-on to DORA. It removes the log-buffer serialization point that
// experiment E4 identifies as the bottleneck left after DORA bypasses the
// centralized lock manager:
//
//   - Consolidation array: concurrent appenders combine their buffer-space
//     requests in a small array of slots. The first thread to join a slot
//     becomes the group's leader and is the only one that enters the
//     serialized tail-reservation step; while it waits for that mutex,
//     later arrivals CAS themselves into the group, so contention grows
//     group size instead of queue length.
//   - Decoupled buffer fill: space reservation (a pointer bump) is the only
//     serialized step. Record serialization — the checksummed framing and
//     the memcpy, which the single-mutex log performs inside its critical
//     section — happens in parallel after reservation, each member writing
//     its own disjoint extent region.
//   - Flush pipelining: a flush daemon hardens completed groups in LSN
//     order and completes transactions asynchronously via ForceAsync, so
//     commit never blocks a worker thread on the device sync, and one sync
//     covers every group that completed in the meantime (group commit).
//
// The record encoding is wal's (wal.EncodeInto), so the stream is
// byte-identical to the legacy log's for equal records and the ARIES
// scanner and recovery work unchanged over clog-produced logs.
package clog

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"dora/internal/metrics"
	"dora/internal/trace"
	"dora/internal/wal"
)

// ErrClosed reports a force against a closed log manager.
var ErrClosed = errors.New("clog: log manager closed")

const (
	// numSlots is the consolidation-array width. A few slots spread the
	// join CASes; every slot's group still reserves through one mutex, so
	// LSN space stays contiguous.
	numSlots = 4
	// maxPending bounds bytes reserved but not yet hardened; leaders wait
	// for the flush daemon past this (backpressure grows their groups).
	maxPending = 8 << 20
	// flushEvery is the pending-byte level past which group completion
	// wakes the flush daemon even with no force outstanding; below it the
	// daemon sleeps and durability requests drive the pipeline.
	flushEvery = 256 << 10
	// baseSpins is how long a follower spins for its group's base LSN
	// before parking on the channel.
	baseSpins = 128
)

// group is one consolidated append batch: a contiguous LSN extent
// reserved by its leader, filled in parallel by its members.
type group struct {
	// total accumulates members' byte counts while the group is open
	// (joiners CAS it); the leader closes the group by swapping in -1.
	// Pooled groups keep total at -1, so a thread holding a stale pointer
	// from a slot can never join one. (A stale join into a pointer that
	// was already reincarnated as a *different open* group is benign: any
	// successful CAS into an open group is a valid membership.)
	total atomic.Int64
	// size is the final byte count, set by the leader at reservation.
	size int64
	// base is the extent's first LSN; valid once ready is true.
	base  uint64
	buf   []byte
	ready atomic.Bool
	// baseReady is installed lazily by the first follower that exhausts
	// its spin; the leader closes whatever channel it finds after
	// publishing the base.
	baseReady atomic.Pointer[chan struct{}]
	// copied counts member bytes serialized into buf; the group may be
	// flushed when copied == size.
	copied atomic.Int64
	next   *group
}

// groupPool recycles group descriptors (and their extent buffers) once
// the flush daemon has hardened them; on the fast path an append performs
// no allocation at all in steady state.
var groupPool = sync.Pool{New: func() any {
	g := &group{}
	g.total.Store(-1)
	return g
}}

// getGroup returns a closed, reset group ready for reservation (solo use)
// or for opening via total.Store (slot leadership).
func getGroup() *group {
	g := groupPool.Get().(*group)
	g.next = nil
	g.copied.Store(0)
	g.ready.Store(false)
	g.baseReady.Store(nil)
	return g
}

// extent sizes g.buf for its reservation, reusing the pooled allocation
// when it is big enough.
func (g *group) extent(total int64) {
	if int64(cap(g.buf)) >= total {
		g.buf = g.buf[:total]
	} else {
		g.buf = make([]byte, total)
	}
}

type waiter struct {
	lsn uint64
	fn  func(error)
}

// Log is the consolidation-array log manager. It implements wal.Manager
// and wal.AsyncForcer.
type Log struct {
	store wal.Store
	cs    *metrics.CriticalSectionStats

	slots [numSlots]atomic.Pointer[group]

	// tailMu guards the one serialized step: LSN-space reservation and the
	// reserved-group FIFO append that fixes flush order. Group leaders
	// take it per group; the flush daemon takes it briefly per batch.
	tailMu     sync.Mutex
	nextLSN    uint64
	head, tail *group

	durable atomic.Uint64
	pending atomic.Int64
	roomMu  sync.Mutex
	room    *sync.Cond

	// ioMu serializes store writes (flush daemon) against Truncate's
	// store rewrite; sink holds the hardened-extent observer.
	ioMu sync.Mutex
	sink atomic.Pointer[wal.ExtentSink]

	// waitMu guards waiters and the sticky error; nwait mirrors
	// len(waiters) so group completion can test for outstanding forces
	// without the lock.
	waitMu  sync.Mutex
	waiters []waiter
	nwait   atomic.Int64
	err     error

	flushCh chan struct{}
	stopCh  chan struct{}
	doneCh  chan struct{}
	closed  atomic.Bool

	// tracer, when set, samples appends for the latency tracer's
	// log_reserve / log_fill stages (the Aether decomposition).
	tracer atomic.Pointer[trace.Tracer]

	// Appends counts records; Groups counts consolidated reservations;
	// Forces/GroupedCommits/Syncs mirror the legacy log's counters.
	Appends        metrics.Counter
	Groups         metrics.Counter
	Forces         metrics.Counter
	GroupedCommits metrics.Counter
	Syncs          metrics.Counter
}

// New creates a consolidation-array log manager over store, writing or
// validating the shared file header, and starts the flush daemon.
func New(store wal.Store, cs *metrics.CriticalSectionStats) (*Log, error) {
	next, err := wal.InitStore(store)
	if err != nil {
		return nil, err
	}
	l := &Log{
		store:   store,
		cs:      cs,
		nextLSN: next,
		flushCh: make(chan struct{}, 1),
		stopCh:  make(chan struct{}),
		doneCh:  make(chan struct{}),
	}
	l.room = sync.NewCond(&l.roomMu)
	l.durable.Store(next)
	go l.daemon()
	return l, nil
}

// Append implements wal.Manager. The caller's thread either leads a group
// (one serialized reservation for every member) or consolidates into an
// open one and never touches the shared tail at all; either way it
// serializes the record into the group extent in parallel with the other
// members and returns once its bytes are in the log buffer.
func (l *Log) Append(rec *wal.Record) wal.LSN {
	size := int64(wal.EncodedSize(rec))
	l.Appends.Inc()
	// Sampled appends time the two phases Aether decomposes: reserve
	// (entry to base-LSN assignment, the only serialized step) and fill
	// (the parallel serialization into the extent).
	var t0 time.Time
	tr := l.tracer.Load()
	traced := tr.Enabled() && tr.SampleHop()
	if traced {
		t0 = time.Now()
	}
	reserved := func() {
		if traced {
			now := time.Now()
			tr.RecordSpan(trace.StageLogReserve, -1, now.Sub(t0))
			t0 = now
		}
	}
	filled := func() {
		if traced {
			tr.RecordSpan(trace.StageLogFill, -1, time.Since(t0))
		}
	}
	// Adaptive fast path: with the tail uncontended there is nothing to
	// consolidate with — reserve a solo extent directly. Under contention
	// the TryLock fails and appends consolidate instead, which is exactly
	// when grouping pays.
	if l.pending.Load() < maxPending && l.tailMu.TryLock() {
		g := getGroup() // pooled groups are born closed: no one can join
		l.reserveLocked(g, size)
		if l.cs != nil {
			l.cs.Log.Inc()
		}
		g.extent(size)
		reserved()
		rec.LSN = g.base
		wal.EncodeInto(g.buf[:size], rec)
		l.finishCopy(g, size)
		filled()
		return rec.LSN
	}
	slot := &l.slots[rand.IntN(numSlots)]
	for {
		g := slot.Load()
		if g == nil {
			ng := getGroup()
			ng.total.Store(size) // open: joiners may CAS in from here on
			sl := slot
			if !slot.CompareAndSwap(nil, ng) {
				// Lost the installation race. ng must still be led, not
				// discarded: a stale pointer from this descriptor's
				// previous slot life could have joined the moment total
				// opened, and members may only be stranded never.
				sl = nil
			}
			l.lead(sl, ng)
			reserved()
			rec.LSN = ng.base
			wal.EncodeInto(ng.buf[:size], rec)
			l.finishCopy(ng, size)
			filled()
			return rec.LSN
		}
		off, ok := join(g, size)
		if !ok {
			continue // group closed under us; retry with a fresh one
		}
		l.awaitBase(g)
		reserved()
		rec.LSN = g.base + uint64(off)
		wal.EncodeInto(g.buf[off:off+size], rec)
		l.finishCopy(g, size)
		filled()
		return rec.LSN
	}
}

// join CASes size into an open group, returning the member's byte offset
// within the extent. ok is false if the group closed first.
func join(g *group, size int64) (off int64, ok bool) {
	for {
		t := g.total.Load()
		if t < 0 {
			return 0, false
		}
		if g.total.CompareAndSwap(t, t+size) {
			return t, true
		}
	}
}

// lead runs the group leader's serialized step: acquire the tail mutex
// (consolidation keeps happening while it waits), detach and close the
// group, reserve its LSN extent, and publish the base so members can fill
// their regions in parallel. slot is nil when the group never made it
// into the consolidation array.
func (l *Log) lead(slot *atomic.Pointer[group], g *group) {
	l.waitForRoom()
	if l.cs != nil {
		if !l.tailMu.TryLock() {
			l.cs.Contended.Inc()
			l.tailMu.Lock()
		}
		// One serialization-point entry per consolidated group — members
		// that piggybacked never enter it; that is the point.
		l.cs.Log.Inc()
	} else {
		l.tailMu.Lock()
	}
	if slot != nil {
		// Detach before closing: once total goes negative, late joiners
		// must find a fresh slot, not spin on this group.
		slot.CompareAndSwap(g, nil)
	}
	total := g.total.Swap(-1)
	l.reserveLocked(g, total)
	g.extent(total)
	g.ready.Store(true)
	if ch := g.baseReady.Load(); ch != nil {
		close(*ch)
	}
}

// reserveLocked fixes g's extent at the current tail and queues it on the
// flush FIFO — the whole serialized step. Called with tailMu held;
// releases it.
func (l *Log) reserveLocked(g *group, total int64) {
	g.size = total
	g.base = l.nextLSN
	l.nextLSN += uint64(total)
	if l.tail == nil {
		l.head = g
	} else {
		l.tail.next = g
	}
	l.tail = g
	l.tailMu.Unlock()
	l.Groups.Inc()
	l.pending.Add(total)
}

// awaitBase waits for the leader to publish the group's base LSN: a short
// spin (reservation is just a pointer bump away), then a lazily installed
// channel — the common case never allocates it.
func (l *Log) awaitBase(g *group) {
	for i := 0; i < baseSpins; i++ {
		if g.ready.Load() {
			return
		}
	}
	ch := make(chan struct{})
	if !g.baseReady.CompareAndSwap(nil, &ch) {
		ch = *g.baseReady.Load()
	}
	// The leader may have published between the spin and the install; it
	// only closes a channel it observes after setting ready.
	if g.ready.Load() {
		return
	}
	<-ch
}

// finishCopy accounts a member's serialized bytes. The member completing
// the group wakes the flush daemon only when something needs the flush —
// an outstanding force, or enough pending bytes to be worth hardening —
// so an idle pipeline costs appends nothing.
func (l *Log) finishCopy(g *group, size int64) {
	// Read the total before the Add: the completing Add hands the group
	// to the flush daemon, which may recycle the descriptor immediately.
	total := g.size
	if g.copied.Add(size) != total {
		return
	}
	if l.nwait.Load() > 0 || l.pending.Load() >= flushEvery {
		l.kick()
	}
}

func (l *Log) kick() {
	select {
	case l.flushCh <- struct{}{}:
	default:
	}
}

// waitForRoom blocks while too many reserved bytes await hardening. Only
// leaders wait here, before the tail mutex, so their groups keep
// consolidating and the FIFO keeps draining.
func (l *Log) waitForRoom() {
	if l.pending.Load() < maxPending {
		return
	}
	l.roomMu.Lock()
	for l.pending.Load() >= maxPending {
		l.room.Wait()
	}
	l.roomMu.Unlock()
}

// daemon is the flush pipeline: it hardens completed groups in LSN order,
// advances the durability horizon, and completes waiting transactions.
func (l *Log) daemon() {
	defer close(l.doneCh)
	for {
		select {
		case <-l.flushCh:
			l.flushOnce()
		case <-l.stopCh:
			l.flushOnce()
			return
		}
	}
}

// flushOnce writes and syncs the completed prefix of the group FIFO —
// strictly in LSN order, which is what makes early lock release safe: a
// dependent transaction's commit record always hardens after the records
// it depends on.
func (l *Log) flushOnce() {
	l.tailMu.Lock()
	var batch []*group
	for g := l.head; g != nil && g.copied.Load() == g.size; g = g.next {
		batch = append(batch, g)
	}
	if len(batch) > 0 {
		l.head = batch[len(batch)-1].next
		if l.head == nil {
			l.tail = nil
		}
	}
	l.tailMu.Unlock()
	if len(batch) == 0 {
		return
	}
	// A dead log stays dead: after a store failure, writing later batches
	// would punch an LSN-offset gap into the stream and let durable
	// advance past records that were never persisted.
	l.waitMu.Lock()
	err := l.err
	l.waitMu.Unlock()
	var bytes int64
	end := uint64(0)
	l.ioMu.Lock()
	for _, g := range batch {
		if err == nil {
			err = l.store.Write(g.buf)
		}
		bytes += g.size
		end = g.base + uint64(g.size)
	}
	if err == nil {
		err = l.store.Sync()
	}
	l.ioMu.Unlock()
	if err == nil {
		l.Syncs.Inc()
		l.durable.Store(end)
		if sp := l.sink.Load(); sp != nil {
			// The sink gets its own copy: the group descriptors (and their
			// extent buffers) go back to the pool right below.
			data := make([]byte, 0, bytes)
			for _, g := range batch {
				data = append(data, g.buf...)
			}
			(*sp)(batch[0].base, data)
		}
	}
	// Hardened descriptors go back to the pool: every member finished
	// (copied == size) before the group entered the batch, so no thread
	// can still touch one.
	for _, g := range batch {
		g.next = nil
		groupPool.Put(g)
	}
	l.pending.Add(-bytes)
	l.roomMu.Lock()
	l.room.Broadcast()
	l.roomMu.Unlock()
	l.completeWaiters(err)
}

// completeWaiters fires durability callbacks: on success, every waiter the
// new horizon covers; on a store error, every waiter (the error is sticky
// and the log is dead).
func (l *Log) completeWaiters(err error) {
	d := l.durable.Load()
	l.waitMu.Lock()
	var fire []waiter
	if err != nil {
		if l.err == nil {
			l.err = err
		}
		fire = l.waiters
		l.waiters = nil
		err = l.err
	} else {
		keep := l.waiters[:0]
		for _, w := range l.waiters {
			if d > w.lsn {
				fire = append(fire, w)
			} else {
				keep = append(keep, w)
			}
		}
		l.waiters = keep
	}
	l.nwait.Add(-int64(len(fire)))
	l.waitMu.Unlock()
	if len(fire) == 0 {
		return
	}
	// Callbacks run off the daemon thread: a commit completion appends
	// the transaction's end record, and under backpressure that append
	// would otherwise park the daemon in waitForRoom — waiting for a
	// flush only the daemon itself can perform.
	go func() {
		for _, w := range fire {
			w.fn(err)
		}
	}()
}

// ForceAsync implements wal.AsyncForcer: fn runs exactly once — inline if
// lsn is already durable, otherwise from a completion goroutine once the
// flush daemon hardens it. Callbacks may block (and may append — commit
// completion writes the end record); they never run on the daemon itself.
func (l *Log) ForceAsync(lsn wal.LSN, fn func(error)) {
	l.Forces.Inc()
	l.forceAsync(lsn, fn, false)
}

// forceAsync is ForceAsync's body; closing lets Close's final flush
// through after the closed flag is already up.
func (l *Log) forceAsync(lsn wal.LSN, fn func(error), closing bool) {
	l.waitMu.Lock()
	if err := l.err; err != nil {
		l.waitMu.Unlock()
		fn(err)
		return
	}
	if l.durable.Load() > lsn {
		l.waitMu.Unlock()
		l.GroupedCommits.Inc()
		fn(nil)
		return
	}
	if !closing && l.closed.Load() {
		l.waitMu.Unlock()
		fn(ErrClosed)
		return
	}
	l.nwait.Add(1)
	l.waiters = append(l.waiters, waiter{lsn: lsn, fn: fn})
	l.waitMu.Unlock()
	l.kick()
}

// Force implements wal.Manager by waiting on ForceAsync.
func (l *Log) Force(lsn wal.LSN) error {
	ch := make(chan error, 1)
	l.ForceAsync(lsn, func(err error) { ch <- err })
	return <-ch
}

// FlushAll implements wal.Manager.
func (l *Log) FlushAll() error {
	next := l.Next()
	if next == 0 {
		return nil
	}
	return l.Force(next - 1)
}

// Durable implements wal.Manager.
func (l *Log) Durable() wal.LSN { return l.durable.Load() }

// SetExtentSink implements wal.ExtentSource: fn observes every
// subsequently hardened extent, in LSN order, on the flush daemon — it
// must only hand the extent off, never block on downstream I/O.
func (l *Log) SetExtentSink(fn wal.ExtentSink) {
	if fn == nil {
		l.sink.Store(nil)
		return
	}
	l.sink.Store(&fn)
}

// Truncate implements wal.Truncator: it drops records below origin from
// the backing store, serialized against the flush daemon's writes. origin
// must not exceed the durable horizon.
func (l *Log) Truncate(origin wal.LSN) error {
	if d := l.durable.Load(); origin > d {
		return fmt.Errorf("clog: truncate origin %d above durable horizon %d", origin, d)
	}
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	return wal.Truncate(l.store, origin)
}

// Next implements wal.Manager.
func (l *Log) Next() wal.LSN {
	l.tailMu.Lock()
	n := l.nextLSN
	l.tailMu.Unlock()
	return n
}

// Scan implements wal.Manager using the shared scanner, so a clog-produced
// stream feeds the same ARIES recovery as a legacy one.
func (l *Log) Scan(fn func(*wal.Record) error) error {
	if err := l.FlushAll(); err != nil {
		return err
	}
	raw, err := l.store.Contents()
	if err != nil {
		return err
	}
	return wal.ScanBytes(raw, fn)
}

// Stats implements wal.Manager.
func (l *Log) Stats() wal.Stats {
	a, g := l.Appends.Load(), l.Groups.Load()
	return wal.Stats{
		Appends:        a,
		Forces:         l.Forces.Load(),
		Syncs:          l.Syncs.Load(),
		GroupedCommits: l.GroupedCommits.Load(),
		Groups:         g,
		Consolidated:   a - g,
	}
}

// SetTracer installs (or, with nil, removes) the latency tracer whose
// log_reserve / log_fill stages sampled appends feed.
func (l *Log) SetTracer(t *trace.Tracer) { l.tracer.Store(t) }

// Close implements wal.Manager: it hardens everything appended so far and
// stops the flush daemon. Appends after Close are invalid; forces fail
// with ErrClosed unless already satisfied.
func (l *Log) Close() error {
	if l.closed.Swap(true) {
		<-l.doneCh
		return nil
	}
	var err error
	if next := l.Next(); next > 0 {
		ch := make(chan error, 1)
		l.forceAsync(next-1, func(e error) { ch <- e }, true)
		err = <-ch
	}
	close(l.stopCh)
	<-l.doneCh
	return err
}
