package clog

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dora/internal/metrics"
	"dora/internal/wal"
)

func mk(t *testing.T) (*Log, *wal.MemStore) {
	t.Helper()
	store := wal.NewMemStore()
	l, err := New(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	return l, store
}

func TestAppendScanRoundTrip(t *testing.T) {
	l, _ := mk(t)
	want := []*wal.Record{
		{Kind: wal.KInsert, TxnID: 1, Table: 3, Page: 7, Slot: 2, Key: 99, Redo: []byte("new")},
		{Kind: wal.KUpdate, TxnID: 1, Table: 3, Page: 7, Slot: 2, Key: 99, Redo: []byte("after"), Undo: []byte("before")},
		{Kind: wal.KCLR, Sub: wal.KUpdate, TxnID: 2, UndoNext: 5, Redo: []byte("comp")},
		{Kind: wal.KCommit, TxnID: 1},
		{Kind: wal.KEnd, TxnID: 1},
	}
	for _, r := range want {
		r.PrevLSN = 11
		l.Append(r)
	}
	var got []*wal.Record
	if err := l.Scan(func(r *wal.Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Kind != w.Kind || g.Sub != w.Sub || g.TxnID != w.TxnID ||
			g.Table != w.Table || g.Page != w.Page || g.Slot != w.Slot ||
			g.Key != w.Key || g.UndoNext != w.UndoNext || g.PrevLSN != 11 ||
			g.LSN != w.LSN {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, g, w)
		}
		if string(g.Redo) != string(w.Redo) || string(g.Undo) != string(w.Undo) {
			t.Fatalf("record %d images mismatch", i)
		}
	}
}

func TestStreamMatchesLegacyFormat(t *testing.T) {
	// The same records appended to the legacy log and to clog must
	// produce byte-identical streams (recovery compatibility).
	recs := func() []*wal.Record {
		return []*wal.Record{
			{Kind: wal.KInsert, TxnID: 7, Table: 1, Page: 2, Slot: 3, Key: 4, Redo: []byte("abc")},
			{Kind: wal.KCommit, TxnID: 7, PrevLSN: 8},
			{Kind: wal.KEnd, TxnID: 7, PrevLSN: 8},
		}
	}
	legacyStore := wal.NewMemStore()
	legacy, err := wal.New(legacyStore, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs() {
		legacy.Append(r)
	}
	if err := legacy.FlushAll(); err != nil {
		t.Fatal(err)
	}
	clogStore := wal.NewMemStore()
	cl, err := New(clogStore, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs() {
		cl.Append(r)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	lb, _ := legacyStore.Contents()
	cb, _ := clogStore.Contents()
	if string(lb) != string(cb) {
		t.Fatalf("streams differ: legacy %d bytes, clog %d bytes", len(lb), len(cb))
	}
}

func TestConcurrentAppendsConsolidate(t *testing.T) {
	l, _ := mk(t)
	const writers, per = 16, 400
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Append(&wal.Record{Kind: wal.KUpdate, TxnID: uint64(w + 1), Key: int64(i), Redo: []byte("payload")})
			}
		}(w)
	}
	wg.Wait()
	n := 0
	seen := map[wal.LSN]bool{}
	perTxn := map[uint64]int{}
	if err := l.Scan(func(r *wal.Record) error {
		if seen[r.LSN] {
			t.Fatalf("duplicate LSN %d", r.LSN)
		}
		seen[r.LSN] = true
		perTxn[r.TxnID]++
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != writers*per {
		t.Fatalf("scanned %d, want %d", n, writers*per)
	}
	for w := 1; w <= writers; w++ {
		if perTxn[uint64(w)] != per {
			t.Fatalf("writer %d: %d records, want %d", w, perTxn[uint64(w)], per)
		}
	}
	st := l.Stats()
	if st.Groups > st.Appends {
		t.Fatalf("more groups (%d) than appends (%d)", st.Groups, st.Appends)
	}
	if st.Consolidated != st.Appends-st.Groups {
		t.Fatalf("consolidated %d, want %d", st.Consolidated, st.Appends-st.Groups)
	}
}

func TestForceAsyncCompletesInLSNOrderHorizon(t *testing.T) {
	l, _ := mk(t)
	var mu sync.Mutex
	var order []wal.LSN
	var wg sync.WaitGroup
	var lsns []wal.LSN
	for i := 0; i < 8; i++ {
		lsns = append(lsns, l.Append(&wal.Record{Kind: wal.KCommit, TxnID: uint64(i + 1)}))
	}
	for _, lsn := range lsns {
		lsn := lsn
		wg.Add(1)
		l.ForceAsync(lsn, func(err error) {
			if err != nil {
				t.Error(err)
			}
			mu.Lock()
			order = append(order, lsn)
			mu.Unlock()
			wg.Done()
		})
	}
	wg.Wait()
	if len(order) != len(lsns) {
		t.Fatalf("completed %d forces, want %d", len(order), len(lsns))
	}
	for _, lsn := range lsns {
		if l.Durable() <= lsn {
			t.Fatalf("LSN %d not durable after callback (durable=%d)", lsn, l.Durable())
		}
	}
}

func TestForceAfterCloseErrors(t *testing.T) {
	store := wal.NewMemStore()
	l, err := New(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	lsn := l.Append(&wal.Record{Kind: wal.KCommit, TxnID: 1})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Already-durable forces still succeed (idempotence)...
	if err := l.Force(lsn); err != nil {
		t.Fatalf("force of durable LSN after close: %v", err)
	}
	// ...but a force beyond the hardened horizon reports the closed log.
	if err := l.Force(lsn + 1<<20); !errors.Is(err, ErrClosed) {
		t.Fatalf("force past horizon after close: %v, want ErrClosed", err)
	}
}

func TestCrashCopyKeepsOnlySyncedGroups(t *testing.T) {
	store := wal.NewMemStore()
	l, err := New(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := l.Append(&wal.Record{Kind: wal.KInsert, TxnID: 1, Redo: []byte("durable")})
	if err := l.Force(a); err != nil {
		t.Fatal(err)
	}
	crashed := store.CrashCopy()
	_ = l.Close()
	l2, err := New(crashed, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got []*wal.Record
	if err := l2.Scan(func(r *wal.Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Redo) != "durable" {
		t.Fatalf("after crash: %d records", len(got))
	}
}

func TestReopenAcrossImplementations(t *testing.T) {
	// A legacy-written log reopens under clog and vice versa, with LSNs
	// continuing monotonically.
	store := wal.NewMemStore()
	legacy, err := wal.New(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	lsn1 := legacy.Append(&wal.Record{Kind: wal.KCommit, TxnID: 1})
	if err := legacy.FlushAll(); err != nil {
		t.Fatal(err)
	}
	cl, err := New(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	lsn2 := cl.Append(&wal.Record{Kind: wal.KCommit, TxnID: 2})
	if lsn2 <= lsn1 {
		t.Fatalf("clog reused LSN space: %d <= %d", lsn2, lsn1)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := wal.New(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := back.Scan(func(r *wal.Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("scanned %d records across implementations, want 2", n)
	}
}

// produceStream builds a clog stream of n records and returns its raw
// bytes (for the robustness scans below).
func produceStream(t *testing.T, n int) []byte {
	t.Helper()
	store := wal.NewMemStore()
	l, err := New(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				l.Append(&wal.Record{Kind: wal.KUpdate, TxnID: uint64(w + 1), Key: int64(i), Redo: []byte("robust")})
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := store.Contents()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestTornTailTruncatedOnClogStream(t *testing.T) {
	raw := produceStream(t, 40)
	full := 0
	if err := wal.ScanBytes(raw, func(r *wal.Record) error { full++; return nil }); err != nil {
		t.Fatal(err)
	}
	if full != 40 {
		t.Fatalf("full scan: %d records, want 40", full)
	}
	// Cut the final record in half: the scan must stop cleanly before it.
	torn := raw[:len(raw)-20]
	n := 0
	if err := wal.ScanBytes(torn, func(r *wal.Record) error { n++; return nil }); err != nil {
		t.Fatalf("scan of torn clog stream: %v", err)
	}
	if n != full-1 {
		t.Fatalf("torn scan delivered %d records, want %d", n, full-1)
	}
}

func TestCorruptRecordRejectedOnClogStream(t *testing.T) {
	raw := produceStream(t, 40)
	var offsets []int
	if err := wal.ScanBytes(raw, func(r *wal.Record) error {
		offsets = append(offsets, int(r.LSN))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Flip payload bytes of a mid-stream record: its CRC no longer
	// matches, so the scan must reject it (and everything after — the
	// stream is not trustworthy past a corrupt record).
	mid := offsets[len(offsets)/2]
	raw[mid+12] ^= 0xFF
	n := 0
	if err := wal.ScanBytes(raw, func(r *wal.Record) error {
		if int(r.LSN) >= mid {
			t.Fatalf("corrupt record at %d delivered to scan", mid)
		}
		n++
		return nil
	}); err != nil {
		t.Fatalf("scan of corrupted stream: %v", err)
	}
	if n != len(offsets)/2 {
		t.Fatalf("delivered %d records before corruption, want %d", n, len(offsets)/2)
	}
}

func TestCorruptLengthFieldRejected(t *testing.T) {
	raw := produceStream(t, 8)
	var offsets []int
	if err := wal.ScanBytes(raw, func(r *wal.Record) error {
		offsets = append(offsets, int(r.LSN))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// A wildly wrong frame length must terminate the scan, not crash it.
	mid := offsets[len(offsets)/2]
	binary.LittleEndian.PutUint32(raw[mid:], 0xFFFFFF00)
	n := 0
	if err := wal.ScanBytes(raw, func(r *wal.Record) error { n++; return nil }); err != nil {
		t.Fatalf("scan with corrupt length: %v", err)
	}
	if n != len(offsets)/2 {
		t.Fatalf("delivered %d records, want %d", n, len(offsets)/2)
	}
}

// failStore fails every Write after the header, simulating a dead log
// device.
type failStore struct {
	*wal.MemStore
	fail atomic.Bool
}

func (s *failStore) Write(b []byte) error {
	if s.fail.Load() {
		return errors.New("device failure")
	}
	return s.MemStore.Write(b)
}

func TestStoreFailureIsStickyAndFreezesDurable(t *testing.T) {
	store := &failStore{MemStore: wal.NewMemStore()}
	l, err := New(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := l.Durable()
	store.fail.Store(true)
	lsn := l.Append(&wal.Record{Kind: wal.KCommit, TxnID: 1})
	if err := l.Force(lsn); err == nil {
		t.Fatal("force over failing store must error")
	}
	// The log is dead: later forces keep failing and the durability
	// horizon must not advance past the lost batch, even for records
	// appended afterwards.
	lsn2 := l.Append(&wal.Record{Kind: wal.KCommit, TxnID: 2})
	if err := l.Force(lsn2); err == nil {
		t.Fatal("force after sticky failure must error")
	}
	if d := l.Durable(); d != before {
		t.Fatalf("durable advanced from %d to %d over a dead store", before, d)
	}
	if err := l.Close(); err == nil {
		t.Fatal("close must surface the sticky error")
	}
}

func TestBackpressureBoundsPending(t *testing.T) {
	// A slow store must not let reserved-but-unflushed bytes grow without
	// bound; appenders throttle on the room condition instead.
	store := wal.NewMemStore()
	l, err := New(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	big := make([]byte, 64<<10)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				l.Append(&wal.Record{Kind: wal.KUpdate, TxnID: 1, Redo: big})
				if p := l.pending.Load(); p > maxPending+8*int64(len(big)+1024) {
					t.Errorf("pending %d exceeded bound", p)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// slowSyncStore simulates a slow log device so pending bytes pile up.
type slowSyncStore struct {
	*wal.MemStore
	delay time.Duration
}

func (s *slowSyncStore) Sync() error {
	time.Sleep(s.delay)
	return s.MemStore.Sync()
}

func TestCommitCallbacksSurviveBackpressure(t *testing.T) {
	// Commit completions append the transaction's end record from their
	// durability callback. Under backpressure (pending >= maxPending on a
	// slow device) that append must not wedge the flush pipeline — the
	// daemon would otherwise be waiting, inside the callback, for a flush
	// only it can perform.
	store := &slowSyncStore{MemStore: wal.NewMemStore(), delay: 2 * time.Millisecond}
	l, err := New(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 128<<10)
	const writers, per = 4, 40 // 4*40*128KB = 20MB >> maxPending
	var wg, cbs sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn := l.Append(&wal.Record{Kind: wal.KUpdate, TxnID: uint64(w + 1), Redo: big})
				cbs.Add(1)
				l.ForceAsync(lsn, func(error) {
					l.Append(&wal.Record{Kind: wal.KEnd, TxnID: uint64(w + 1)})
					cbs.Done()
				})
			}
		}(w)
	}
	wg.Wait()
	cbs.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalSectionCountsGroupsNotAppends(t *testing.T) {
	cs := &metrics.CriticalSectionStats{}
	store := wal.NewMemStore()
	l, err := New(store, cs)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Append(&wal.Record{Kind: wal.KUpdate, TxnID: uint64(w + 1), Key: int64(i)})
			}
		}(w)
	}
	wg.Wait()
	snap := cs.Snapshot()
	st := l.Stats()
	if snap.Log != st.Groups {
		t.Fatalf("cs.Log = %d, want one entry per consolidated group (%d)", snap.Log, st.Groups)
	}
	if st.Appends != 1600 {
		t.Fatalf("appends = %d, want 1600", st.Appends)
	}
}
