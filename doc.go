// Package dora is a from-scratch Go reproduction of "A Data-oriented
// Transaction Execution Engine and Supporting Tools" (Pandis et al.,
// SIGMOD 2011): the DORA thread-to-data OLTP engine, the conventional
// thread-to-transaction baseline, the Shore-MT-like storage-manager
// substrate they share (buffer pool, B+trees, WAL + ARIES-style
// recovery, hierarchical lock manager), the dynamic load balancer and
// alignment advisor, the designer tools (flow-graph generation from
// SQL-ish specs, physical-design advice), the live monitor, and the
// TATP / TPC-C / TPC-B workloads.
//
// See README.md for the package tour, quickstart, and the experiment
// index. The packages live under internal/; the runnable entry points
// are the examples/ programs and the cmd/ tools.
package dora
