// Package dora is a from-scratch Go reproduction of "A Data-oriented
// Transaction Execution Engine and Supporting Tools" (Pandis et al.,
// SIGMOD 2011): the DORA thread-to-data OLTP engine, the conventional
// thread-to-transaction baseline, the Shore-MT-like storage-manager
// substrate they share (buffer pool, B+trees, WAL + ARIES-style
// recovery, hierarchical lock manager), the dynamic load balancer and
// alignment advisor, the designer tools (flow-graph generation from
// SQL-ish specs, physical-design advice), the live monitor, and the
// TATP / TPC-C / TPC-B workloads.
//
// Beyond the paper it grows the prototype toward the authors' follow-on
// work: a consolidation-array log manager with flush pipelining and
// early lock release (internal/wal/clog, experiment E11), a
// physiologically partitioned access path (internal/btree's
// PartitionedTree, PLP-style: per-partition B+tree subtrees owned by
// DORA's workers, making owner-thread index descents latch-free —
// experiment E12), and background physical maintenance (internal/maint,
// experiment E13): heap pages are stamped with their owner's token so
// aligned record reads skip the buffer-frame latch, and a paced daemon —
// running its operations on the owning workers' threads via the inbox
// path — migrates or re-stamps the pages that splits and merges
// orphaned and compacts decayed subtrees, keeping the physical layout
// converged with the routing topology. The original DORA caveat that
// "latching remains" is thereby retired class by class: owner-thread
// index descents take no node latches, and frame latches on aligned
// reads converge to zero as maintenance drains.
//
// The write side of that class is retired too (experiment E15): owner
// mutations of stamped pages are latch-free by construction
// (storage.Heap's UpdateOwnedWith/DeleteOwnedWith/MutateOwnedWith and
// latch-free owner inserts), because page cleaning is owner-coordinated
// copy-on-write — the buffer pool's flush daemon (buffer.Cleaner),
// checkpoint FlushAll, and eviction never latch a stamped dirty frame;
// they ship a snapshot request through the owning worker's inbox, the
// owner copies the page at a quiescent point of its own thread (a
// consistent image at a known LSN), and the requester hardens the copy
// — WAL forced to the copy's LSN first — while the owner keeps mutating
// the live frame. A per-frame write-sequence counter, bumped with
// release semantics before every byte mutation, replaces the latch for
// conflict detection: the hardened copy clears the dirty bit only when
// no mutation raced it (a double-checked clear). Eviction skips stamped
// frames (a worker's hot set) while unstamped candidates exist and can
// drop only CLEAN stamped frames when forced. Crash recovery is
// exactly-once whether the crash lands mid-snapshot or mid-write-back:
// the on-disk image is always a consistent page at a known LSN and
// ARIES redo-skip does the rest. dora.Config.LatchedOwnerWrites keeps
// the exclusive-latch write protocol as the measurement baseline, and
// the open-loop arrival-rate driver (workload.OpenLoop over
// dora.ExecAsync: Poisson arrivals, bounded in-flight cap, drop and
// latency accounting) measures behaviour past the saturation knee.
//
// Cross-partition execution is asynchronous end to end (experiment
// E14): a foreign operation ships to its owner together with a
// continuation instead of parking the sender, action bodies SUSPEND on
// foreign logical ops (xct.Env.Async + the Session's *Async operations)
// while their worker keeps draining its inbox, the flow-graph executor
// advances phases purely by rendezvous-point countdowns
// (dora.ExecAsync), and abort compensation rides the same path
// (sm.RollbackAsync). No sender is ever parked, so arbitrary action
// bodies are deadlock-safe by construction; dora.Config.BlockingShips
// restores the parked-sender baseline for measurement.
//
// Replication (internal/repl, experiment E16) turns the group-commit
// log into a replication stream: the clog flush daemon's hardened group
// extents ship — in LSN order, over in-process or TCP links — to
// replicas that append them to their own log and replay them through
// the recovery-redo machinery into a live engine. Commit rules ride the
// commit pipeline: asynchronous shipping by default, or semi-sync K-ack
// where each commit waits until K replicas have replayed it (degrading,
// counted, when replicas die rather than wedging). Read replicas serve
// read-only sessions at their hardened commit horizon — bounded
// staleness, measured in log bytes — via repl.ReadEngine; promotion
// closes committed-but-unended transactions, rolls back in-flight
// losers with CLRs, and brings the replica up writable, with the old
// primary's divergent tail truncated (wal.TruncateTail) before it
// rejoins. A trimmer daemon (sm.Trimmer) checkpoints and truncates the
// WAL prefix under min(checkpoint redo, oldest active transaction,
// slowest replica's acked LSN), so retention stays bounded while
// replicas stream. Unaligned actions resolve their routing fields
// asynchronously too (xct.Action.ResolveAsync): phase dispatch suspends
// on resolver probes like action bodies do, keeping the coordinator
// unparked.
//
// The backward paths are partitioned too (experiment E17): crash-
// recovery redo and replica streaming apply share a partition-parallel
// redo pipeline (sm.Options.RedoWorkers / repl.Options.RedoWorkers). A
// dispatcher scans records in LSN order and keeps everything global —
// committed-prefix admission, checkpoint attachments, transaction
// resolutions, index maintenance, commit-horizon advancement — while
// physical records fan out to applier workers sharded by page ID; each
// applier drains a FIFO, so per-page LSN order (the redo-skip
// idempotence invariant) holds by construction while distinct pages
// redo concurrently, and the dispatcher consumes completions through a
// reorder buffer in dispatch order. Replica delivery syncs the pool at
// each extent boundary inside the state lock, so bounded-staleness
// readers still observe only extent-consistent states; any applier
// error fail-stops the whole pool; promotion drains and retires it
// before the serial winner/loser pass. Undo orders losers
// deterministically, so parallel recovery is byte-for-byte identical to
// serial — E17 asserts that digest equality at 1/2/4/8 appliers and
// races a serial against a parallel replica on one shipped stream.
// Checkpoint FlushAll pipelines its owner-coordinated snapshot ships
// the same way: all stamped frames' ships go out at once and the copies
// harden from a completion queue, so checkpoint latency stops scaling
// with owner count.
//
// Observability (experiment E18) closes the loop on all of it: an
// always-on sampled latency tracer (internal/trace) follows one
// transaction in N end to end — admission, queue wait, execution,
// suspends, ships, the commit queue, log reserve/fill, the
// flush-hardening wait, early lock release, semi-sync ack waits, and
// replica delivery/apply — recording spans on per-worker lock-free
// rings (drop-on-full, never a stall) that an aggregator drains into
// per-stage power-of-two histograms. The monitor snapshot carries the
// per-stage decomposition with traced end-to-end quantiles and a
// span-coverage percentage; monitor.ListenHTTP serves it pull-style as
// Prometheus text exposition on /metrics (dependency-free) alongside
// /snapshot JSON and the explicitly wired /debug/pprof profiles; and
// traced transactions past a slow threshold emit their full span tree
// as one JSON line. The parallel-redo pool feeds the same stats back
// into itself: with AdaptiveRedo set, the dispatcher resizes the
// applier pool from windowed queue-depth averages, only at barrier
// points where the drained queues make the page remap order-safe. E18
// verifies the decomposition (stage sum ≈ traced p50, queue_wait — not
// exec — grows past the saturation knee) and the sampling cost (<2%
// throughput, measured drift-robustly in alternating windows).
//
// The overload autopilot (internal/admission, experiment E20) turns
// those signals into control: an AIMD controller in front of the
// engine bounds in-flight transactions against a single p99 SLO knob,
// reading the tracer's windowed tail latency each tick — multiplying
// the cap down when over, creeping up when comfortably under, and
// treating a full-but-silent window as over so convoys can't blind it.
// Excess load is shed at the door with a typed ErrOverload carrying an
// exponentially backed-off RetryAfter hint; class limits make
// maintenance shed first and reads last, with over-cap reads optionally
// offloaded to a read replica. While shedding, pace gates make the
// maintenance daemon yield its ticks and the balancer defer
// repartitions — deferring the work, never dropping it. E20 drives
// four adversarial storms (hot-key zipfian, flash crowd, mid-run skew
// shift with a forced repartition, uniform YCSB 50/50) at 2–4× each
// mix's own measured knee and shows the off arm blowing p99 out or
// collapsing goodput while the on arm holds the band and the deferred
// background work re-converges afterwards.
//
// See README.md for the package tour, quickstart, and the experiment
// index. The packages live under internal/; the runnable entry points
// are the examples/ programs and the cmd/ tools.
package dora
