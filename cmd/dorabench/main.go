// Command dorabench runs the reproduction experiments (E1–E20 and the
// A1–A3 ablations; see README.md) at configurable scale and prints their
// result tables.
//
// Usage:
//
//	dorabench -exp e5 -subscribers 50000 -duration 3s
//	dorabench -exp all -quick
//	dorabench -exp e15 -arrival 50000 -inflight 512   # open-loop overload
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dora/internal/exp"
)

func main() {
	var (
		which    = flag.String("exp", "all", "experiment id (e1..e20, a1..a3, comma-separated, or 'all')")
		subs     = flag.Int64("subscribers", 20000, "TATP scale (subscribers)")
		whs      = flag.Int64("warehouses", 4, "TPC-C scale (warehouses)")
		branches = flag.Int64("branches", 8, "TPC-B scale (branches)")
		dur      = flag.Duration("duration", 2*time.Second, "measured duration per point")
		clients  = flag.Int("clients", 0, "client count (0 = 2x GOMAXPROCS)")
		parts    = flag.Int("partitions", 0, "DORA partitions per table (0 = auto)")
		arrival  = flag.Float64("arrival", 0, "open-loop offered load in txn/s (0 = 2x measured capacity; E15)")
		inflight = flag.Int("inflight", 0, "open-loop in-flight cap (0 = 256; E15)")
		redoW    = flag.Int("redo-workers", 0, "parallel-redo appliers for E17's replica rows (0 = 4)")
		quick    = flag.Bool("quick", false, "smoke-test scale")
		asJSON   = flag.Bool("json", false, "emit result tables as JSON (for BENCH_*.json artifacts)")
	)
	flag.Parse()
	jsonOut = *asJSON

	cfg := exp.Config{
		Subscribers: *subs, Warehouses: *whs, Branches: *branches,
		Duration: *dur, Clients: *clients, Partitions: *parts, Quick: *quick,
		ArrivalRate: *arrival, MaxInFlight: *inflight, RedoWorkers: *redoW,
	}
	if *quick {
		cfg = exp.Config{
			Quick: true, Clients: *clients, Partitions: *parts,
			ArrivalRate: *arrival, MaxInFlight: *inflight, RedoWorkers: *redoW,
		}
	}

	ids := strings.Split(strings.ToLower(*which), ",")
	if *which == "all" {
		ids = []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15", "e16", "e17", "e18", "e19", "e20", "a1", "a2", "a3"}
	}
	for _, id := range ids {
		if err := runOne(strings.TrimSpace(id), cfg); err != nil {
			fmt.Fprintf(os.Stderr, "dorabench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

func runOne(id string, cfg exp.Config) error {
	switch id {
	case "e1":
		return show(exp.E1AccessPatterns(cfg))
	case "e2":
		return show(exp.E2VaryingLoad(cfg, nil))
	case "e3":
		return show(exp.E3IntraParallel(cfg))
	case "e4":
		return show(exp.E4CriticalSections(cfg))
	case "e5":
		return show(exp.E5PeakThroughput(cfg))
	case "e6":
		return show(exp.E6Rebalance(cfg))
	case "e7":
		return show(exp.E7Alignment(cfg))
	case "e8":
		tb, graphs, err := exp.E8FlowGraphs()
		if err != nil {
			return err
		}
		fmt.Println(tb.Render())
		for _, g := range graphs {
			fmt.Println(g)
		}
		return nil
	case "e9":
		tb, rendered, err := exp.E9PhysicalDesign(8)
		if err != nil {
			return err
		}
		fmt.Println(tb.Render())
		fmt.Println(rendered)
		return nil
	case "e10":
		return show(exp.E10CoreScaling(cfg, nil))
	case "e11":
		return show(exp.E11LogScalability(cfg, nil))
	case "e12":
		return show(exp.E12AccessPathLatching(cfg))
	case "e13":
		return show(exp.E13PhysicalMaintenance(cfg))
	case "e14":
		return show(exp.E14ContinuationShips(cfg))
	case "e15":
		return show(exp.E15PageCleaning(cfg))
	case "e16":
		return show(exp.E16Replication(cfg))
	case "e17":
		return show(exp.E17RedoScalability(cfg))
	case "e18":
		return show(exp.E18LatencyAttribution(cfg))
	case "e19":
		return show(exp.E19LockHierarchy(cfg))
	case "e20":
		return show(exp.E20OverloadAutopilot(cfg))
	case "a1":
		return show(exp.A1PartitionCount(cfg, nil))
	case "a2":
		return show(exp.A2GroupCommit(cfg, nil))
	case "a3":
		return show(exp.A3Claims(cfg))
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
}

// jsonOut switches show to machine-readable output; CI redirects it into
// per-experiment BENCH_*.json files to track the perf trajectory.
var jsonOut bool

func show(tb *exp.Table, err error) error {
	if err != nil {
		return err
	}
	if jsonOut {
		s, jerr := tb.JSON()
		if jerr != nil {
			return jerr
		}
		fmt.Print(s)
		return nil
	}
	fmt.Println(tb.Render())
	return nil
}
