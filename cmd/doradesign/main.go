// Command doradesign is the designer tool of the demo's Part 3 (§2.3):
// it reads SQL-ish transaction specs and prints generated transaction
// flow graphs (text or Graphviz DOT), or a physical-design suggestion
// for a weighted workload.
//
// Usage:
//
//	doradesign -flow  spec.sql            # flow graph for each TXN block
//	doradesign -flow  spec.sql -dot       # Graphviz output
//	doradesign -phys  spec.sql -workers 8 # physical design; lines may be
//	                                      # prefixed "FREQ <n>" per TXN
//
// With no file, specs are read from stdin. Partitioning fields default
// to each table's first equality-probed column; override with
// -parts table=field,table=field.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dora/internal/designer"
	"dora/internal/designer/sqlmini"
)

func main() {
	var (
		flow    = flag.Bool("flow", false, "generate transaction flow graphs")
		phys    = flag.Bool("phys", false, "suggest a physical design")
		dot     = flag.Bool("dot", false, "render flow graphs as Graphviz DOT")
		workers = flag.Int("workers", 8, "micro-engine budget for -phys")
		partsF  = flag.String("parts", "", "table=field overrides for partitioning fields")
	)
	flag.Parse()
	if !*flow && !*phys {
		fmt.Fprintln(os.Stderr, "doradesign: need -flow or -phys")
		os.Exit(2)
	}

	src, err := readInput(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "doradesign: %v\n", err)
		os.Exit(1)
	}
	specs, freqs, err := splitSpecs(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doradesign: %v\n", err)
		os.Exit(1)
	}

	partFields := map[string]string{}
	for _, kv := range strings.Split(*partsF, ",") {
		if kv == "" {
			continue
		}
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) == 2 {
			partFields[parts[0]] = parts[1]
		}
	}

	var txns []*sqlmini.Txn
	for _, spec := range specs {
		txn, err := sqlmini.ParseTxn(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doradesign: %v\n", err)
			os.Exit(1)
		}
		txns = append(txns, txn)
	}
	// Default partitioning fields: most-probed equality column per table.
	if len(partFields) == 0 {
		var wl []designer.WeightedTxn
		for i, txn := range txns {
			wl = append(wl, designer.WeightedTxn{Txn: txn, Freq: freqs[i]})
		}
		d := designer.Advise(wl, nil, *workers)
		for _, tp := range d.Tables {
			partFields[tp.Table] = tp.PartitionField
		}
	}

	if *flow {
		for _, txn := range txns {
			fp := designer.Generate(txn, partFields)
			if *dot {
				fmt.Println(fp.DOT())
			} else {
				fmt.Println(fp.Render())
			}
		}
	}
	if *phys {
		var wl []designer.WeightedTxn
		for i, txn := range txns {
			wl = append(wl, designer.WeightedTxn{Txn: txn, Freq: freqs[i]})
		}
		d := designer.Advise(wl, nil, *workers)
		fmt.Println(d.Render())
	}
}

func readInput(args []string) (string, error) {
	if len(args) == 0 {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(args[0])
	return string(b), err
}

// splitSpecs cuts the input into TXN blocks, honouring optional
// "FREQ <n>" lines before each block.
func splitSpecs(src string) (specs []string, freqs []float64, err error) {
	freq := 1.0
	rest := src
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			return specs, freqs, nil
		}
		if up := strings.ToUpper(rest); strings.HasPrefix(up, "FREQ") {
			nl := strings.IndexByte(rest, '\n')
			if nl < 0 {
				return nil, nil, fmt.Errorf("dangling FREQ line")
			}
			f, err := strconv.ParseFloat(strings.TrimSpace(rest[4:nl]), 64)
			if err != nil {
				return nil, nil, fmt.Errorf("bad FREQ line: %v", err)
			}
			freq = f
			rest = rest[nl+1:]
			continue
		}
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			return nil, nil, fmt.Errorf("unterminated TXN block")
		}
		specs = append(specs, rest[:end+1])
		freqs = append(freqs, freq)
		freq = 1.0
		rest = rest[end+1:]
	}
}
