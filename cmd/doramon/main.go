// Command doramon is the live-systems demo (§2.2): it runs a
// conventional engine and a DORA prototype side by side over identical
// TATP databases, drives both with a configurable client load, serves
// real-time statistics over a TCP socket (one JSON snapshot per line —
// the interface the demo GUI consumes), and renders a terminal view.
//
// Usage:
//
//	doramon -subscribers 20000 -clients 16 -listen 127.0.0.1:7070
//
// Attach any client (e.g. `nc 127.0.0.1 7070`) for the JSON stream.
// The built-in balancer keeps re-partitioning DORA as the skewed load
// (a slowly circling hot spot) moves.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"dora/internal/admission"
	"dora/internal/buffer"
	"dora/internal/dora"
	"dora/internal/dora/balance"
	"dora/internal/engine"
	"dora/internal/engine/conventional"
	"dora/internal/maint"
	"dora/internal/metrics"
	"dora/internal/monitor"
	"dora/internal/repl"
	"dora/internal/sm"
	"dora/internal/trace"
	"dora/internal/wal"
	"dora/internal/workload"
	"dora/internal/workload/tatp"
)

func main() {
	var (
		subs    = flag.Int64("subscribers", 20000, "TATP scale")
		clients = flag.Int("clients", 16, "clients per engine")
		listen  = flag.String("listen", "127.0.0.1:7070", "stats socket address")
		period  = flag.Duration("period", time.Second, "snapshot period")
		dur     = flag.Duration("duration", 0, "run time (0 = until interrupt)")
		hotFrac = flag.Float64("hot", 0.8, "fraction of accesses hitting the hot spot")
		replica = flag.Bool("replica", true, "run an in-process read replica of the DORA database")
		semiK   = flag.Int("semisync", 0, "semi-sync commit rule: acks required per commit (0 = async)")
		redoW   = flag.Int("redo-workers", 4, "replica parallel-redo appliers (0 or 1 = serial replay)")
		adaptW  = flag.Bool("adaptive-redo", false, "let the replica's applier pool resize itself from queue depth")
		httpOn  = flag.String("http", "", "HTTP observability address (/metrics, /snapshot, /debug/pprof; empty = off)")
		sample  = flag.Int("trace-sample", 64, "latency tracer: trace 1 in N transactions (0 = tracing off)")
		slowMS  = flag.Int("trace-slow-ms", 0, "emit JSON span trees for traced txns slower than this (0 = off)")
		pilot   = flag.Bool("autopilot", false, "SLO-driven admission control in front of the DORA engine")
		sloMS   = flag.Int("slo-p99-ms", 50, "autopilot p99 latency target in milliseconds")
	)
	flag.Parse()

	// The latency tracer follows 1/N of the DORA engine's transactions end
	// to end; its per-stage aggregates feed the snapshot stream and the
	// /metrics exposition.
	var tracer *trace.Tracer
	if *sample > 0 {
		tracer = trace.New(trace.Config{
			SampleEvery:   *sample,
			SlowThreshold: time.Duration(*slowMS) * time.Millisecond,
		})
		defer tracer.Close()
	}

	fmt.Printf("loading two TATP databases (%d subscribers each)...\n", *subs)
	mk := func(store wal.Store, tr *trace.Tracer) (*tatp.DB, *metrics.CriticalSectionStats) {
		cs := &metrics.CriticalSectionStats{}
		s, err := sm.Open(sm.Options{Frames: 1 << 14, CS: cs, LogStore: store, Spans: tr})
		fatal(err)
		db, err := tatp.Load(s, *subs)
		fatal(err)
		return db, cs
	}
	convDB, _ := mk(nil, nil)
	doraStore := wal.NewMemStore()
	doraDB, doraCS := mk(doraStore, tracer)
	_ = doraCS

	conv := conventional.New(convDB.SM)
	de := dora.New(doraDB.SM, dora.Config{PartitionsPerTable: 2, Domains: doraDB.Domains(), Tracer: tracer})
	// Background physical maintenance keeps the partitioned layout
	// converged behind the balancer's moves, and the balancer consults
	// its convergence state so it never re-partitions a table
	// mid-migration (maintenance-aware balancing).
	md := maint.New(doraDB.SM, de, maint.Config{})
	md.Start()
	defer md.Close()
	// The flush daemon hardens dirty pages in the background; stamped
	// pages go through the owner-coordinated copy-on-write snapshot ship,
	// so owner writes stay latch-free while cleaning runs.
	cl := buffer.NewCleaner(doraDB.SM.Pool, buffer.CleanerConfig{})
	cl.Start()
	defer cl.Close()
	bal := balance.NewBalancer(de, balance.Policy{Every: 100 * time.Millisecond, MinParts: 2},
		"subscriber", "access_info", "special_facility", "call_forwarding")
	bal.SetMaintGate(md.Converging)
	bal.Start()
	defer bal.Stop()

	// A hot spot that slowly circles the key space (the demo slider).
	hot := workload.NewHotspot(1, *subs, *hotFrac, *subs/20)
	go func() {
		for i := 0; ; i++ {
			time.Sleep(3 * time.Second)
			hot.SetCenter(1 + (hot.Center()+*subs/10)%*subs)
		}
	}()

	// Replication: the DORA database ships its log to an in-process read
	// replica; read-only TATP traffic is offloaded to it at a bounded
	// staleness, and the trimmer bounds the primary's retained log under
	// the slowest replica's acked horizon.
	var rsrc *monitor.ReplSource
	var rep *repl.Replica
	var repDB *tatp.DB
	if *replica {
		sh, err := repl.AttachPrimary(doraDB.SM, doraStore, repl.Rule{K: *semiK})
		fatal(err)
		defer sh.Close()
		rep, err = repl.NewReplica(repl.Options{Frames: 1 << 13, RedoWorkers: *redoW, AdaptiveRedo: *adaptW, Tracer: tracer, DDL: func(s *sm.SM) error {
			var derr error
			repDB, derr = tatp.Schema(s, *subs)
			return derr
		}})
		fatal(err)
		fatal(sh.AddReplica("replica-1", repl.LocalLink{R: rep}))
		trim := &sm.Trimmer{SM: doraDB.SM, AckHorizon: sh.AckHorizon}
		trim.Start()
		defer trim.Stop()
		rsrc = &monitor.ReplSource{Shipper: sh, Trimmer: trim, Replica: rep, Primary: doraDB.SM}
	}

	// Overload autopilot: an SLO-targeted admission controller in front
	// of the DORA engine. Its windowed p99 signal comes from the same
	// tracer the snapshot stream publishes; read-only flows it would
	// shed are offloaded to the replica when one runs; and while it is
	// shedding, the maintenance daemon pauses its migration ticks and
	// the balancer defers repartitions (neither competes with the
	// overload for the same workers).
	var ctrl *admission.Controller
	doraEng := engine.Engine(de)
	if *pilot {
		cfg := admission.Config{SLO: time.Duration(*sloMS) * time.Millisecond}
		if tracer != nil {
			cfg.Signal = (&admission.TraceSignal{T: tracer}).Window
		}
		if rep != nil {
			cfg.Offload = repl.ReadEngine{R: rep}
		}
		ctrl = admission.New(de, cfg)
		defer ctrl.Stop()
		md.SetPaceGate(ctrl.Shedding)
		bal.SetLoadGate(ctrl.Shedding)
		doraEng = ctrl
		fmt.Printf("autopilot: p99 SLO %dms (adaptive admission + load shedding)\n", *sloMS)
	}

	src := &monitor.Source{
		SM:        doraDB.SM,
		Dora:      de,
		Maint:     md,
		Repl:      rsrc,
		Trace:     tracer,
		Admission: ctrl,
		Engines: []monitor.CommitCounter{
			monitor.CounterAdapter{EngineName: "conventional", Committed: &conv.Committed, Aborted: &conv.Aborted},
			monitor.CounterAdapter{EngineName: "dora", Committed: &de.Committed, Aborted: &de.Aborted},
		},
	}
	sv := monitor.NewServer(src, *period)
	addr, err := sv.Listen(*listen)
	fatal(err)
	defer sv.Close()
	fmt.Printf("stats socket: %s (one JSON snapshot per line)\n", addr)
	if *httpOn != "" {
		haddr, closeHTTP, err := monitor.ListenHTTP(src, *httpOn)
		fatal(err)
		defer func() { _ = closeHTTP() }()
		fmt.Printf("http: http://%s/metrics  /snapshot  /debug/pprof/\n", haddr)
	}

	runDur := 100 * 365 * 24 * time.Hour
	if *dur > 0 {
		runDur = *dur
	}
	go func() {
		(&workload.Driver{
			Engine: conv, Mix: convDB.NewMix(tatp.MixOptions{SIDGen: hotCopy(hot, *subs, *hotFrac)}),
			Clients: *clients, Duration: runDur, Seed: 1,
		}).Run()
	}()
	go func() {
		(&workload.Driver{
			Engine: doraEng, Mix: doraDB.NewMix(tatp.MixOptions{SIDGen: hot}),
			Clients: *clients, Duration: runDur, Seed: 2,
		}).Run()
	}()
	if rep != nil {
		// Read offload: the read-only slice of the TATP mix runs against
		// the replica at its hardened commit horizon (bounded staleness).
		go func() {
			(&workload.Driver{
				Engine: repl.ReadEngine{R: rep}, Mix: repDB.ReadOnlyMix(tatp.MixOptions{}),
				Clients: 4, Duration: runDur, Seed: 3,
			}).Run()
		}()
	}

	// Terminal view: refresh a summary line each period.
	stopAt := time.Now().Add(runDur)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	var prev *monitor.Snapshot
	lastT := time.Now()
	tick := time.NewTicker(*period)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			fmt.Println("\ninterrupted")
			return
		case now := <-tick.C:
			if now.After(stopAt) {
				return
			}
			snap := src.Sample(prev, now.Sub(lastT))
			prev, lastT = snap, now
			printSnapshot(snap)
		}
	}
}

// hotCopy gives the conventional engine its own identically-moving
// hotspot (the two engines must see the same access distribution).
func hotCopy(h *workload.Hotspot, n int64, frac float64) *workload.Hotspot {
	c := workload.NewHotspot(1, n, frac, n/20)
	go func() {
		for {
			time.Sleep(200 * time.Millisecond)
			c.SetCenter(h.Center())
		}
	}()
	return c
}

func printSnapshot(s *monitor.Snapshot) {
	fmt.Printf("-- %s --\n", s.At.Format("15:04:05"))
	for _, e := range s.Engines {
		fmt.Printf("  %-13s %8.0f tps  committed=%d aborted=%d\n",
			e.Name, e.Throughput, e.Committed, e.Aborted)
	}
	fmt.Printf("  lockmgr CS=%d latch CS=%d contended=%d  buffer hit=%.3f\n",
		s.CS.LockMgr, s.CS.Latch, s.CS.Contended, s.BufferHitRate)
	var owned, latched, stampedPages int64
	for _, hv := range s.Heaps {
		owned += hv.OwnedWrites
		latched += hv.OwnedWritesLatched
		stampedPages += int64(hv.StampedPages)
	}
	if owned > 0 || stampedPages > 0 {
		fmt.Printf("  owned writes=%d latched=%d stamped pages=%d\n",
			owned, latched, stampedPages)
	}
	if pc := s.PageCleaning; pc != nil {
		fmt.Printf("  page cleaning: snap ships=%d cleans=%d stamped evictions=%d dirty writes=%d\n",
			pc.SnapshotShips, pc.SnapshotCleans, pc.StampedEvictions, pc.DirtyWrites)
	}
	if lk := s.Locks; lk != nil {
		fmt.Printf("  locks: acq=%d range=%d esc=%d deesc=%d probes key=%d range=%d\n",
			lk.Acquisitions, lk.RangeLocks, lk.Escalations, lk.Deescalations,
			lk.KeyProbes, lk.RangeProbes)
	}
	for _, rv := range s.Replication {
		switch rv.Role {
		case "primary":
			fmt.Printf("  repl primary: shipped=%d lag=%dB degraded=%d retained=%dB trims=%d\n",
				rv.ShippedLSN, rv.LagBytes, rv.DegradedCommits, rv.RetainedLog, rv.LogTrims)
		case "replica":
			fmt.Printf("  repl replica: applied=%d horizon=%d staleness=%dB trend=%dB/s reads=%d open=%d\n",
				rv.AppliedLSN, rv.CommitHorizon, rv.StalenessBytes, rv.LagTrendBps, rv.ReplicaReads, rv.OpenTxns)
			if rv.Redo != nil {
				fmt.Printf("  redo pool: workers=%d max queue=%d appliers:", rv.Redo.Workers, rv.Redo.MaxQueueDepth)
				for i, a := range rv.Redo.Appliers {
					fmt.Printf(" %d@%d(q%d)", i, a.AppliedLSN, a.QueueDepth)
				}
				fmt.Println()
			}
		}
	}
	if ad := s.Admission; ad != nil {
		state := "admitting"
		if ad.Shedding {
			state = "SHEDDING"
		}
		fmt.Printf("  autopilot: %s cap=%d inflight=%d window p99=%.1fms slo=%.0fms attained=%.1f%%\n",
			state, ad.Cap, ad.InFlight, ad.WindowP99MS, ad.SLOMS, ad.SLOAttainedPct())
		fmt.Printf("  autopilot: admitted r/w/m=%d/%d/%d shed r/w/m=%d/%d/%d offloaded reads=%d\n",
			ad.AdmittedRead, ad.AdmittedWrite, ad.AdmittedMaint,
			ad.ShedRead, ad.ShedWrite, ad.ShedMaint, ad.OffloadedReads)
	}
	if sl := s.StageLatency; sl != nil && sl.Sampled > 0 {
		fmt.Printf("  trace: sampled=%d slow=%d coverage=%.0f%% e2e p50=%dus p99=%dus\n",
			sl.Sampled, sl.Slow, sl.CoveragePct, sl.TotalP50US, sl.TotalP99US)
		fmt.Printf("  stages:")
		for _, sv := range sl.Stages {
			fmt.Printf(" %s=%dus", sv.Stage, sv.P50US)
		}
		fmt.Println()
	}
	byTable := map[string]int{}
	for _, p := range s.Partitions {
		byTable[p.Table]++
	}
	fmt.Printf("  dora partitions:")
	for t, n := range byTable {
		fmt.Printf(" %s=%d", t, n)
	}
	fmt.Println()
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "doramon: %v\n", err)
		os.Exit(1)
	}
}
