module dora

go 1.22
