// Benchmarks regenerating every experiment (one per table/figure of the
// demonstrated system; see README.md's experiment index). Each benchmark
// prints the experiment's table via b.Log, so
//
//	go test -bench=. -benchmem
//
// reproduces the full result set at smoke scale; cmd/dorabench runs the
// same experiments at paper scale with flags.
package dora_test

import (
	"testing"
	"time"

	"dora/internal/exp"
)

func quickCfg() exp.Config { return exp.Config{Quick: true} }

func runTable(b *testing.B, f func() (*exp.Table, error)) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb, err := f()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tb.Render())
		}
	}
}

func BenchmarkE1AccessPatterns(b *testing.B) {
	runTable(b, func() (*exp.Table, error) { return exp.E1AccessPatterns(quickCfg()) })
}

func BenchmarkE2VaryingLoad(b *testing.B) {
	runTable(b, func() (*exp.Table, error) { return exp.E2VaryingLoad(quickCfg(), []int{1, 4, 16}) })
}

func BenchmarkE3IntraParallel(b *testing.B) {
	runTable(b, func() (*exp.Table, error) { return exp.E3IntraParallel(quickCfg()) })
}

func BenchmarkE4CriticalSections(b *testing.B) {
	runTable(b, func() (*exp.Table, error) { return exp.E4CriticalSections(quickCfg()) })
}

func BenchmarkE5PeakThroughput(b *testing.B) {
	runTable(b, func() (*exp.Table, error) { return exp.E5PeakThroughput(quickCfg()) })
}

func BenchmarkE6Rebalance(b *testing.B) {
	cfg := quickCfg()
	cfg.Duration = 800 * time.Millisecond // the balancer needs time to react
	runTable(b, func() (*exp.Table, error) { return exp.E6Rebalance(cfg) })
}

func BenchmarkE7Alignment(b *testing.B) {
	runTable(b, func() (*exp.Table, error) { return exp.E7Alignment(quickCfg()) })
}

func BenchmarkE8FlowGraphs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb, graphs, err := exp.E8FlowGraphs()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tb.Render())
			for _, g := range graphs {
				b.Log("\n" + g)
			}
		}
	}
}

func BenchmarkE9PhysicalDesign(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb, rendered, err := exp.E9PhysicalDesign(8)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tb.Render())
			b.Log("\n" + rendered)
		}
	}
}

func BenchmarkE10CoreScaling(b *testing.B) {
	runTable(b, func() (*exp.Table, error) { return exp.E10CoreScaling(quickCfg(), []int{1, 2, 4}) })
}

func BenchmarkE11LogScalability(b *testing.B) {
	runTable(b, func() (*exp.Table, error) { return exp.E11LogScalability(quickCfg(), []int{1, 4, 8}) })
}

func BenchmarkE12AccessPathLatching(b *testing.B) {
	runTable(b, func() (*exp.Table, error) { return exp.E12AccessPathLatching(quickCfg()) })
}

func BenchmarkE13PhysicalMaintenance(b *testing.B) {
	runTable(b, func() (*exp.Table, error) { return exp.E13PhysicalMaintenance(quickCfg()) })
}

func BenchmarkE14ContinuationShips(b *testing.B) {
	runTable(b, func() (*exp.Table, error) { return exp.E14ContinuationShips(quickCfg()) })
}

func BenchmarkE15PageCleaning(b *testing.B) {
	runTable(b, func() (*exp.Table, error) { return exp.E15PageCleaning(quickCfg()) })
}

func BenchmarkE16Replication(b *testing.B) {
	runTable(b, func() (*exp.Table, error) { return exp.E16Replication(quickCfg()) })
}

func BenchmarkA1PartitionCount(b *testing.B) {
	runTable(b, func() (*exp.Table, error) { return exp.A1PartitionCount(quickCfg(), []int{1, 4, 8}) })
}

func BenchmarkA2GroupCommit(b *testing.B) {
	runTable(b, func() (*exp.Table, error) { return exp.A2GroupCommit(quickCfg(), []int{1, 16}) })
}

func BenchmarkA3Claims(b *testing.B) {
	runTable(b, func() (*exp.Table, error) { return exp.A3Claims(quickCfg()) })
}

func BenchmarkE17RedoScalability(b *testing.B) {
	runTable(b, func() (*exp.Table, error) { return exp.E17RedoScalability(quickCfg()) })
}

func BenchmarkE18LatencyAttribution(b *testing.B) {
	runTable(b, func() (*exp.Table, error) { return exp.E18LatencyAttribution(quickCfg()) })
}

func BenchmarkE19LockHierarchy(b *testing.B) {
	runTable(b, func() (*exp.Table, error) { return exp.E19LockHierarchy(quickCfg()) })
}

func BenchmarkE20OverloadAutopilot(b *testing.B) {
	runTable(b, func() (*exp.Table, error) { return exp.E20OverloadAutopilot(quickCfg()) })
}
